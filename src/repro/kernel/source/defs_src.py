"""Shared kernel definitions: structure offsets, limits, errno values.

These play the role of the kernel's header files.  All kernel structures
are statically sized tables (Linux-2.0-style), which keeps the MinC
kernel honest: every field access is a real load/store against kernel
data that injected errors can corrupt.
"""

SOURCE = r"""
/* ---- task_struct -------------------------------------------------- */
const NR_TASKS = 8;
const TASK_WORDS = 24;
const T_STATE = 0;      /* 0 free, 1 runnable, 2 blocked, 3 zombie */
const T_PID = 1;
const T_PGDIR = 2;      /* physical address of page directory */
const T_KSTACK = 3;     /* kernel-virtual base of the kernel stack page */
const T_ESP = 4;        /* saved kernel esp (byte offset 16, see arch) */
const T_PARENT = 5;     /* task table index of parent */
const T_EXIT = 6;
const T_COUNTER = 7;    /* remaining time slice */
const T_PRIORITY = 8;
const T_WCHAN = 9;      /* wait-queue address when blocked */
const T_BRK = 10;       /* user heap end */
const T_HEAP_START = 11;
const T_FILES = 12;     /* NR_OFILE fd slots follow */
const NR_OFILE = 8;
const T_SIGPENDING = 21;    /* bitmask of pending fatal signals */
const T_OOPS = 22;      /* set once a recovery kill was attempted */

const TASK_FREE = 0;
const TASK_RUNNING = 1;
const TASK_BLOCKED = 2;
const TASK_ZOMBIE = 3;

/* ---- file table ---------------------------------------------------- */
const NR_FILE = 16;
const F_WORDS = 6;
const F_COUNT = 0;
const F_TYPE = 1;       /* 1 regular, 2 pipe read, 3 pipe write, 4 console */
const F_INO = 2;        /* inode-slot pointer, or pipe-slot pointer */
const F_POS = 3;
const F_FLAGS = 4;

const FT_REG = 1;
const FT_PIPE_R = 2;
const FT_PIPE_W = 3;
const FT_CONSOLE = 4;

/* ---- in-core inode table ------------------------------------------- */
const NR_INODE = 16;
const I_WORDS = 18;
const I_INO = 0;        /* on-disk inode number; 0 = slot free */
const I_COUNT = 1;
const I_TYPE = 2;       /* 1 regular file, 2 directory */
const I_SIZE = 3;
const I_DIRTY = 4;
const I_BLK = 5;        /* 11 direct pointers + 1 indirect: words 5..16 */
const EXT2_NBLOCKS = 12;
const EXT2_NDIR = 11;   /* slots 0..10 are direct */
const EXT2_IND_SLOT = 11;
const EXT2_ADDR_PER_BLOCK = 256;    /* 1 KiB block / 4-byte pointers */
const EXT2_MAX_BLOCKS = 267;        /* 11 direct + 256 indirect */

const IT_FILE = 1;
const IT_DIR = 2;

/* ---- buffer cache --------------------------------------------------- */
const NR_BUF = 16;
const B_WORDS = 6;
const B_BLOCK = 0;      /* block number; -1 = free */
const B_DATA = 1;
const B_COUNT = 2;
const B_DIRTY = 3;
const B_VALID = 4;
const B_TIME = 5;
const BLOCK_SIZE = 1024;

/* ---- page cache ------------------------------------------------------ */
const NR_PGCACHE = 16;
const PC_WORDS = 5;
const PC_INODE = 0;     /* inode-slot pointer; 0 = free */
const PC_INDEX = 1;     /* page index within the file */
const PC_PAGE = 2;      /* kernel-virtual page address */
const PC_VALID = 3;
const PC_TIME = 4;

/* ---- pipes ------------------------------------------------------------ */
const NR_PIPE = 4;
const PIPE_WORDS = 7;
const P_BUF = 0;
const P_HEAD = 1;
const P_TAIL = 2;
const P_LEN = 3;
const P_READERS = 4;
const P_WRITERS = 5;
const PIPE_BUF_BYTES = 4096;

/* ---- on-disk layout (ext2lite) ---------------------------------------- */
const EXT2_MAGIC = 0xEF53;
const SB_BLOCK = 0;
const SB_MAGIC = 0;     /* word offsets within the superblock */
const SB_NBLOCKS = 1;
const SB_NINODES = 2;
const SB_BITMAP = 3;
const SB_ITABLE = 4;
const SB_IBLOCKS = 5;
const SB_DATA_START = 6;
const SB_ROOT_INO = 7;
const SB_STATE = 8;     /* 1 = cleanly unmounted */
const SB_MOUNTS = 9;

const DINODE_BYTES = 64;
const DI_TYPE = 0;      /* word offsets within a disk inode */
const DI_SIZE = 1;
const DI_LINKS = 2;
const DI_BLK = 4;       /* 11 direct + 1 indirect pointer: words 4..15 */

const DIRENT_BYTES = 32;
const DNAME_MAX = 27;

/* ---- binary format ------------------------------------------------------ */
const BX_MAGIC = 0x0B17C0DE;
const BXH_MAGIC = 0;
const BXH_ENTRY = 1;    /* entry point (virtual) */
const BXH_FILESZ = 2;   /* bytes to load from the file */
const BXH_BSS = 3;      /* zero-filled bytes after the file image */
const BX_HEADER_BYTES = 16;

/* ---- errno --------------------------------------------------------------- */
const EPERM = 1;
const EINTR = 4;
const ENOENT = 2;
const ESRCH = 3;
const EIO = 5;
const ENOEXEC = 8;
const EBADF = 9;
const ECHILD = 10;
const EAGAIN = 11;
const ENOMEM = 12;
const EFAULT = 14;
const EBUSY = 16;
const EEXIST = 17;
const ENOTDIR = 20;
const EISDIR = 21;
const EINVAL = 22;
const ENFILE = 23;
const EMFILE = 24;
const EFBIG = 27;
const ENOSPC = 28;
const ESPIPE = 29;
const EPIPE = 32;
const ENAMETOOLONG = 36;
const ENOSYS = 38;

/* ---- signals-lite --------------------------------------------------------- */
const SIGKILL = 9;
const SIGSEGV = 11;
const SIGFPE = 8;
const SIGILL = 4;
const SIGTRAP = 5;

/* ---- paging bits ------------------------------------------------------------ */
const PTE_P = 1;
const PTE_W = 2;
const PTE_U = 4;

/* ---- recovery ---------------------------------------------------------------- */
/* Kernel-mode ticks without a scheduling/syscall/idle touch before the
 * soft-lockup watchdog kills the wedged task (recovery kernels only). */
const SOFTLOCKUP_TICKS = 60;
"""
