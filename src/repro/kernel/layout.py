"""Physical/virtual memory layout shared by the host and the kernel.

This is the single source of truth: the kernel build injects these values
into the MinC sources as ``const`` declarations (see
:func:`KernelLayout.minc_header`), and the machine layer uses the same
object to place the kernel image, boot page tables and devices.
"""

PAGE_SIZE = 4096


class KernelLayout:
    """Address-space plan for the simulated machine (Linux 2.4-flavoured)."""

    RAM_BYTES = 8 * 1024 * 1024           # 8 MiB, like a small 2002 box
    KERNEL_BASE = 0xC0000000              # kernel linear map: virt = base+phys
    KERNEL_PHYS = 0x00100000              # kernel image at 1 MiB
    KERNEL_TEXT = KERNEL_BASE + KERNEL_PHYS

    BOOT_PGDIR_PHYS = 0x00008000          # boot page tables grow from here
    BOOT_STACK_TOP = KERNEL_BASE + 0x00090000

    # Dynamically allocated pages (mem_map-managed) live above the image.
    FREE_PHYS_START = 0x00300000
    FREE_PHYS_END = RAM_BYTES

    # MMIO window (physical, above RAM; mapped linearly like RAM).
    MMIO_PHYS = 0x00E00000
    CONSOLE_PHYS = MMIO_PHYS
    DISK_PHYS = MMIO_PHYS + 0x1000
    DUMP_PHYS = MMIO_PHYS + 0x2000
    SHUTDOWN_PHYS = MMIO_PHYS + 0x3000
    MMIO_BYTES = 0x4000

    CONSOLE_VIRT = KERNEL_BASE + CONSOLE_PHYS
    DISK_VIRT = KERNEL_BASE + DISK_PHYS
    DUMP_VIRT = KERNEL_BASE + DUMP_PHYS
    SHUTDOWN_VIRT = KERNEL_BASE + SHUTDOWN_PHYS

    # User address space.
    USER_TEXT = 0x08048000
    USER_STACK_TOP = 0xBFFFE000           # top of initial user stack page
    USER_STACK_PAGES = 2
    USER_MIN = 0x00001000                 # below this = NULL-pointer zone

    # Selectors must agree with repro.cpu.cpu.
    KERNEL_CS = 0x10
    KERNEL_DS = 0x18
    USER_CS = 0x23
    USER_DS = 0x2B

    TIMER_INTERVAL = 20000                # cycles per tick

    def minc_header(self):
        """MinC ``const`` declarations mirroring this layout."""
        pairs = [
            ("PAGE_SIZE", PAGE_SIZE),
            ("KERNEL_BASE", self.KERNEL_BASE),
            ("FREE_PHYS_START", self.FREE_PHYS_START),
            ("FREE_PHYS_END", self.FREE_PHYS_END),
            ("CONSOLE_DEV", self.CONSOLE_VIRT),
            ("DISK_DEV", self.DISK_VIRT),
            ("DUMP_DEV", self.DUMP_VIRT),
            ("SHUTDOWN_DEV", self.SHUTDOWN_VIRT),
            ("USER_TEXT", self.USER_TEXT),
            ("USER_STACK_TOP", self.USER_STACK_TOP),
            ("USER_STACK_PAGES", self.USER_STACK_PAGES),
            ("USER_MIN", self.USER_MIN),
            ("BOOT_STACK_BASE", self.BOOT_STACK_TOP - PAGE_SIZE),
            ("KERNEL_CS_SEL", self.KERNEL_CS),
            ("KERNEL_DS_SEL", self.KERNEL_DS),
            ("USER_CS_SEL", self.USER_CS),
            ("USER_DS_SEL", self.USER_DS),
        ]
        return "\n".join("const %s = %d;" % (name, value)
                         for name, value in pairs) + "\n"
