#!/usr/bin/env python3
"""Diff two kernel builds and plan/run incremental delta campaigns.

    python3 -m repro.tools.kdelta diff --recovery [--json]
    python3 -m repro.tools.kdelta diff --edit UNIT OLD NEW [--json]
    python3 -m repro.tools.kdelta plan C --from J.jsonl --edit ... [opts]
    python3 -m repro.tools.kdelta run C --from J.jsonl --edit ... \\
        [--journal OUT.jsonl] [--save OUT.json] [opts]
    python3 -m repro.tools.kdelta equal A.json B.json

``diff`` rebuilds the kernel with the given source edits applied and
prints the function-level difference against the unedited build:
changed / moved / impacted name sets, the fingerprint-opaque count and
any global carry blockers (data-section change, added/removed
functions).  ``plan`` additionally loads a prior campaign journal (run
against the *unedited* kernel) and prints the delta plan — how many
records carry forward, how many sites stay live and why.  ``run``
executes the plan: carried records are pre-seeded into the new journal
with provenance and only the live remainder boots kernels; ``--save``
writes an ordinary ``CampaignResults`` JSON.  ``equal`` exits non-zero
unless two results files are bit-identical — the CI gate that a delta
run equals the from-scratch run.

Source edits come from ``--edit UNIT OLD NEW`` (repeatable, literal
substring replacement in one kernel unit) and/or ``--recovery``, the
canonical size-preserving rebuild that inverts the ``oops_recoverable``
gate (see :data:`repro.staticanalysis.delta.RECOVERY_GATE_EDIT`).
"""

import argparse
import json
import sys

from repro.injection.runner import CampaignResults, InjectionHarness
from repro.staticanalysis.delta import (
    RECOVERY_GATE_EDIT,
    diff_kernels,
    plan_delta,
)


def _add_edit_options(parser):
    parser.add_argument("--edit", nargs=3, action="append",
                        metavar=("UNIT", "OLD", "NEW"),
                        help="apply one source edit (repeatable)")
    parser.add_argument("--recovery", action="store_true",
                        help="apply the canonical recovery-gate edit")


def _edits(args, parser):
    edits = [tuple(edit) for edit in (args.edit or [])]
    if args.recovery:
        edits.extend(RECOVERY_GATE_EDIT)
    if not edits:
        parser.error("no source edits: pass --edit UNIT OLD NEW "
                     "and/or --recovery")
    return tuple(edits)


def _add_plan_options(parser):
    from repro.tools.faultcli import add_campaign_options
    add_campaign_options(parser)
    parser.add_argument("--from", dest="source", required=True,
                        metavar="JOURNAL",
                        help="prior campaign journal (run against the "
                             "unedited kernel)")
    _add_edit_options(parser)


def _scale_params(args):
    from repro.tools.faultcli import scale_params
    return scale_params(args)


def _build_kernels(edits):
    from repro.kernel.build import build_kernel
    print("building base + edited kernels...", file=sys.stderr)
    base = build_kernel()
    new = build_kernel(source_edits=edits)
    return base, new


def _build_harness(base, new):
    """Harness on the *edited* kernel, profiled against the base one.

    The base campaign assigned workloads from the base kernel's
    profile; the delta harness must replay the same assignment for
    carried records to match, so the profile is shared rather than
    re-measured on the edited image.
    """
    from repro.profiling.sampler import profile_kernel
    from repro.userland.build import build_all_programs
    from repro.userland.programs import WORKLOADS
    binaries = build_all_programs()
    profile = profile_kernel(base, binaries, WORKLOADS)
    return InjectionHarness(new, binaries, profile)


def _print_diff(diff, as_json):
    summary = diff.summary()
    if as_json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        print()
        return
    print("changed:   %s" % (", ".join(summary["changed"]) or "-"))
    print("moved:     %s" % (", ".join(summary["moved"]) or "-"))
    print("added:     %s" % (", ".join(summary["added"]) or "-"))
    print("removed:   %s" % (", ".join(summary["removed"]) or "-"))
    print("impacted:  %s" % (", ".join(summary["impacted"]) or "-"))
    print("unchanged: %d function(s), %d fingerprint-opaque"
          % (summary["unchanged"], summary["opaque"]))
    print("data:      %s" % ("CHANGED" if summary["data_changed"]
                             else "unchanged"))
    if summary["trap_impacted"]:
        print("trap path: %s" % ", ".join(summary["trap_impacted"]))
    for reason in summary["global_reasons"]:
        print("GLOBAL:    %s (nothing carries)" % reason)


def cmd_diff(args):
    edits = _edits(args, args.parser)
    base, new = _build_kernels(edits)
    diff = diff_kernels(base, new)
    _print_diff(diff, args.json)
    return 0 if not diff.global_reasons else 1


def _plan(args):
    edits = _edits(args, args.parser)
    base, new = _build_kernels(edits)
    harness = _build_harness(base, new)
    stride, cap = _scale_params(args)
    plan = plan_delta(harness, base, args.source, args.campaign,
                      seed=args.seed, byte_stride=stride,
                      max_specs=cap)
    return base, harness, plan, stride, cap


def _print_plan(plan, as_json):
    summary = plan.summary()
    if as_json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        print()
        return
    print("campaign %s seed %d stride %d: %d specs"
          % (summary["campaign"], summary["seed"],
             summary["byte_stride"], summary["n_specs"]))
    print("carried %d, live %d (re-run fraction %.4f)"
          % (summary["carried"], summary["live"],
             summary["rerun_fraction"]))
    for reason, count in sorted(summary["reasons"].items()):
        print("  live because %-16s %4d" % (reason + ":", count))
    print("changed: %s" % (", ".join(summary["diff"]["changed"])
                           or "-"))


def cmd_plan(args):
    _, _, plan, _, _ = _plan(args)
    _print_plan(plan, args.json)
    return 0


def _progress(done, total, result):
    if done % 25 == 0 or done == total:
        print("  %d/%d (%s)" % (done, total, result.outcome),
              file=sys.stderr, flush=True)


def cmd_run(args):
    edits = _edits(args, args.parser)
    base, new = _build_kernels(edits)
    harness = _build_harness(base, new)
    stride, cap = _scale_params(args)
    results = harness.run_campaign(
        args.campaign, seed=args.seed, byte_stride=stride,
        max_specs=cap, jobs=args.jobs, journal_path=args.journal,
        progress=_progress, delta_from=args.source,
        delta_base_kernel=base)
    delta = results.meta["delta"]
    print("delta campaign %s: %d results, %d carried, %d live "
          "(re-run fraction %.4f), %d boots"
          % (args.campaign, len(results), delta["carried"],
             delta["live"], delta["rerun_fraction"], harness.boots))
    if args.save:
        results.save(args.save)
        print("results -> %s" % args.save, file=sys.stderr)
    return 0


def cmd_equal(args):
    from repro.tools.kfabric import cmd_equal as fabric_equal
    return fabric_equal(args)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_diff = sub.add_parser(
        "diff", help="fingerprint-diff the edited kernel")
    _add_edit_options(p_diff)
    p_diff.add_argument("--json", action="store_true")
    p_diff.set_defaults(func=cmd_diff)

    p_plan = sub.add_parser(
        "plan", help="print the carry/live split of a delta campaign")
    _add_plan_options(p_plan)
    p_plan.add_argument("--json", action="store_true")
    p_plan.set_defaults(func=cmd_plan)

    p_run = sub.add_parser(
        "run", help="execute a delta campaign (live sites only)")
    _add_plan_options(p_run)
    p_run.add_argument("--journal", default=None,
                       help="delta journal path (carried records are "
                            "pre-seeded into it)")
    p_run.add_argument("--jobs", type=int, default=1)
    p_run.add_argument("--save", default=None,
                       help="write CampaignResults JSON")
    p_run.set_defaults(func=cmd_run)

    p_equal = sub.add_parser(
        "equal", help="gate two results files on bit-identity")
    p_equal.add_argument("first")
    p_equal.add_argument("second")
    p_equal.set_defaults(func=cmd_equal)

    args = parser.parse_args(argv)
    args.parser = parser
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
