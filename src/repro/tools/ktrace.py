#!/usr/bin/env python3
"""Dump, filter and diff execution flight-recorder traces.

    python3 -m repro.tools.ktrace golden [--workload W] [options]
    python3 -m repro.tools.ktrace dump FUNCTION BYTE BIT [options]
    python3 -m repro.tools.ktrace diff FUNCTION BYTE BIT [options]

``golden`` boots the machine, runs the workload under the flight
recorder and prints the event stream.  ``dump`` does the same with a
single-bit injection armed (bit BIT of byte BYTE of FUNCTION's first
instruction; ``--addr-offset`` picks another instruction).  ``diff``
runs both from the same post-boot snapshot and reports the first
architectural divergence, the empirical flip->divergence->trap
distances and the subsystem spread — the per-experiment view of what
the ``trace_validation`` exhibit scores campaign-wide.

Events are filtered with ``--kind`` and trimmed with ``--last``;
``--json`` emits machine-readable output instead of symbolized text.

``dump`` and ``diff`` accept ``--model`` to trace any pluggable fault
model instead of the instruction flip; the output is annotated with
the delivered fault (``FAULT: disk read timeout (sticky)``).
"""

import argparse
import json
import sys

from repro.analysis.oops import symbolize
from repro.injection.runner import BOOT_MARKER
from repro.kernel.build import build_kernel
from repro.machine.machine import Machine, build_standard_disk
from repro.tools.faultcli import add_model_options, arm_fault, \
    fault_from_args, site_spec
from repro.tracing import CHANNELS, DEFAULT_CHANNELS, diff_traces, \
    format_event
from repro.userland.build import build_all_programs


def _add_common(parser):
    parser.add_argument("--workload", default="syscall")
    parser.add_argument("--channels", default=None,
                        help="comma-separated channel list (default: "
                             "%s; all: %s)"
                             % (",".join(DEFAULT_CHANNELS),
                                ",".join(CHANNELS)))
    parser.add_argument("--capacity", type=int, default=None,
                        help="ring capacity in events (default "
                             "unbounded)")
    parser.add_argument("--last", type=int, default=None,
                        help="print only the last N events")
    parser.add_argument("--kind", default=None, choices=CHANNELS,
                        help="print only events of one channel")
    parser.add_argument("--json", action="store_true")


def _add_site(parser):
    parser.add_argument("function")
    parser.add_argument("byte", type=int)
    parser.add_argument("bit", type=int)
    parser.add_argument("--addr-offset", type=int, default=0,
                        help="offset from the function start")
    add_model_options(parser)


def _parse_channels(args):
    if args.channels is None:
        return DEFAULT_CHANNELS
    return tuple(c.strip() for c in args.channels.split(",") if c.strip())


def _boot(kernel, binaries, workload):
    machine = Machine(kernel, build_standard_disk(binaries, workload))
    machine.run_until_console(BOOT_MARKER, max_cycles=10_000_000)
    return machine.snapshot()


def _traced_run(snapshot, channels, capacity, flip=None, fault=None):
    """Clone the snapshot, trace it, optionally arm a fault; run.

    *fault* is ``(kernel, spec)`` for a pluggable fault model; *flip*
    is the default instruction flip ``(target, byte, bit)``.
    """
    machine = snapshot.clone()
    machine.enable_trace(channels=channels, capacity=capacity)
    state = {}
    if fault is not None:
        kernel, spec = fault
        arm_fault(kernel, machine, spec, state)
    elif flip is not None:
        target, byte_offset, bit = flip

        def callback(m):
            state["tsc"] = m.cpu.cycles
            state["instret"] = m.cpu.instret
            m.flip_bit(target + byte_offset, bit)

        machine.arm_breakpoint(target, callback)
    result = machine.run(max_cycles=120_000_000)
    return machine, result, state


def _print_trace(kernel, trace, args):
    events = trace.events
    if args.kind is not None:
        events = [ev for ev in events if ev[0] == args.kind]
    if args.last is not None:
        events = events[-args.last:]
    if args.json:
        payload = trace.to_dict()
        payload["events"] = [list(ev) for ev in events]
        json.dump(payload, sys.stdout, indent=2)
        print()
        return
    print("# %r" % trace, file=sys.stderr)

    def sym(addr):
        return symbolize(kernel, addr)

    for event in events:
        print(format_event(event, symbolize=sym))


def _resolve_site(kernel, parser, args):
    info = next((f for f in kernel.functions
                 if f.name == args.function), None)
    if info is None:
        parser.error("unknown kernel function %r" % args.function)
    return info, info.start + args.addr_offset


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_golden = sub.add_parser("golden", help="trace a fault-free run")
    _add_common(p_golden)

    p_dump = sub.add_parser("dump", help="trace an injected run")
    _add_site(p_dump)
    _add_common(p_dump)

    p_diff = sub.add_parser("diff",
                            help="diff golden vs injected traces")
    _add_site(p_diff)
    _add_common(p_diff)

    args = parser.parse_args(argv)
    channels = _parse_channels(args)

    kernel = build_kernel()
    binaries = build_all_programs()
    flip = None
    fault = None
    if args.command in ("dump", "diff"):
        info, target = _resolve_site(kernel, parser, args)
        flip = (target, args.byte, args.bit)
        fault_dict = fault_from_args(args)
        if fault_dict is not None:
            spec = site_spec(info, target, fault_dict,
                             workload=args.workload)
            fault = (kernel, spec)
            from repro.injection.faultmodels import resolve_model
            print(resolve_model(spec).describe(spec), file=sys.stderr)

    print("booting %s..." % args.workload, file=sys.stderr)
    snapshot = _boot(kernel, binaries, args.workload)

    if args.command in ("golden", "dump"):
        _, result, state = _traced_run(snapshot, channels,
                                       args.capacity, flip=flip,
                                       fault=fault)
        print("run status: %s (exit %r)"
              % (result.status, result.exit_code), file=sys.stderr)
        if flip is not None and "tsc" not in state:
            print("note: injection never activated", file=sys.stderr)
        _print_trace(kernel, result.trace, args)
        return 0

    # diff: golden first, then the corrupted twin of the same snapshot.
    _, golden_result, _ = _traced_run(snapshot, channels, args.capacity)
    machine, result, state = _traced_run(snapshot, channels,
                                         args.capacity, flip=flip,
                                         fault=fault)
    if "tsc" not in state:
        print("injection never activated; traces are identical",
              file=sys.stderr)
        return 1
    crash = result.crash
    diff = diff_traces(
        golden_result.trace, result.trace,
        activation_cycle=state.get("tsc"),
        activation_instret=state.get("instret"),
        crash_cycle=crash.tsc if crash is not None else None,
        subsystem_of=machine.trace_domain_of)
    if args.json:
        payload = diff.to_dict()
        payload["run_status"] = result.status
        payload["activation_cycle"] = state.get("tsc")
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print("golden:   %s (exit %r)"
          % (golden_result.status, golden_result.exit_code))
    print("injected: %s (exit %r)" % (result.status, result.exit_code))
    print("activated at cycle %d (instret %d)"
          % (state["tsc"], state["instret"]))
    if not diff.diverged:
        print("no architectural divergence (%d events compared)"
              % diff.compared_events)
        return 0
    print("divergence: %s at cycle %s"
          % (diff.divergence_kind, diff.divergence_cycle))
    if diff.divergence_event is not None:
        print("  first differing event:")
        print("    " + format_event(
            diff.divergence_event,
            symbolize=lambda a: symbolize(kernel, a)))
    print("  flip -> divergence: %s cycles, %s instructions"
          % (diff.flip_to_divergence_cycles,
             diff.flip_to_divergence_instrs))
    if diff.divergence_to_trap_cycles is not None:
        print("  divergence -> trap: %d cycles"
              % diff.divergence_to_trap_cycles)
    print("  subsystem spread: %s"
          % (" -> ".join(diff.subsystems) if diff.subsystems
             else "(none)"))
    if not diff.complete:
        print("  (ring wrapped: divergence may be later than reported)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
