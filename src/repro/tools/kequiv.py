#!/usr/bin/env python3
"""Partition, plan, run and audit equivalence-pruned campaigns.

    python3 -m repro.tools.kequiv classes A [--functions F ...] [opts]
    python3 -m repro.tools.kequiv plan A [--pilots K] [--audit F] [opts]
    python3 -m repro.tools.kequiv run A [--journal OUT.jsonl] \\
        [--save OUT.json] [--jobs N] [opts]
    python3 -m repro.tools.kequiv audit JOURNAL [--json]

``classes`` prints the static equivalence partition of a campaign
plan — one line per class fingerprint with its size, kind and key
features.  ``plan`` prints the pilot/audit selection on top of it
(planned injected fraction before any run).  ``run`` executes the
pilot campaign: only pilots + audits boot kernels, class siblings are
extrapolated into the journal with ``{pilot_index, class_fp,
n_members}`` provenance, and classes the audit catches impure are
split and re-piloted (see
:mod:`repro.staticanalysis.equivalence`).  ``audit`` reads any
campaign journal back and reports the executed / extrapolated /
carried census plus per-class provenance — the same check the
``equivalence_validation`` exhibit gates in CI.

Campaign sizing (``--seed --stride --max-specs --scale``) is the
shared :mod:`repro.tools.faultcli` plumbing used by kdelta.
"""

import argparse
import json
import sys


def _harness():
    from repro.injection.runner import InjectionHarness
    from repro.kernel.build import build_kernel
    from repro.profiling.sampler import profile_kernel
    from repro.userland.build import build_all_programs
    from repro.userland.programs import WORKLOADS
    print("building kernel + workloads...", file=sys.stderr)
    kernel = build_kernel()
    binaries = build_all_programs()
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    return InjectionHarness(kernel, binaries, profile)


def _functions(harness, args):
    if not args.functions:
        return None
    from repro.injection.campaigns import select_targets
    targets = select_targets(harness.kernel, harness.profile,
                             args.campaign)
    wanted = [f for f in targets if f.name in set(args.functions)]
    missing = set(args.functions) - {f.name for f in wanted}
    if missing:
        args.parser.error("not campaign-%s targets: %s"
                          % (args.campaign,
                             ", ".join(sorted(missing))))
    return wanted


def _plan(args):
    from repro.staticanalysis.equivalence import plan_equivalence
    from repro.tools.faultcli import scale_params
    harness = _harness()
    stride, cap = scale_params(args)
    plan = plan_equivalence(
        harness, args.campaign, seed=args.seed, byte_stride=stride,
        max_specs=cap, functions=_functions(harness, args),
        pilots_per_class=args.pilots, audit_fraction=args.audit,
        prune_dead=args.prune_dead)
    return harness, plan, stride, cap


def _class_row(cls):
    features = cls.features
    kind = features.get("kind", "?")
    if kind == "flip":
        detail = "op=%s class=%s flip=%s" % (
            features.get("op"), features.get("iclass"),
            features.get("flip"))
    elif kind == "model":
        detail = "model=%s" % features.get("model", {}).get("kind")
    else:
        detail = "workload=%s" % features.get("workload")
    return {"fp": cls.fp, "size": len(cls.members), "kind": kind,
            "pilots": len(cls.pilots), "audits": len(cls.audits),
            "detail": detail}


def cmd_classes(args):
    _, plan, stride, _ = _plan(args)
    rows = sorted((_class_row(c) for c in plan.classes.values()),
                  key=lambda r: (-r["size"], r["fp"]))
    if args.json:
        json.dump({"summary": plan.summary(), "classes": rows},
                  sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print("campaign %s seed %d stride %d: %d site(s), %d class(es)"
          % (plan.campaign, plan.seed, stride, len(plan.specs),
             len(plan.classes)))
    for row in rows:
        print("%s  size %4d  %-8s %d pilot(s) %d audit(s)  %s"
              % (row["fp"], row["size"], row["kind"], row["pilots"],
                 row["audits"], row["detail"]))
    return 0


def cmd_plan(args):
    _, plan, _, _ = _plan(args)
    summary = plan.summary()
    if args.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print("campaign %s seed %d stride %d: %d specs"
          % (summary["campaign"], summary["seed"],
             summary["byte_stride"], summary["n_specs"]))
    print("%d class(es) (largest %d, %d singleton(s))"
          % (summary["n_classes"], summary["largest_class"],
             summary["singletons"]))
    print("pilots %d (+%d audit(s)) -> planned injected %d of %d "
          "(fraction %.4f)"
          % (summary["pilots"], summary["audits"],
             summary["planned_injected"], summary["n_specs"],
             summary["planned_fraction"]))
    return 0


def _progress(done, total, result):
    if done % 25 == 0 or done == total:
        print("  %d/%d (%s)" % (done, total, result.outcome),
              file=sys.stderr, flush=True)


def cmd_run(args):
    from repro.tools.faultcli import scale_params
    harness = _harness()
    stride, cap = scale_params(args)
    results = harness.run_campaign(
        args.campaign, seed=args.seed, byte_stride=stride,
        max_specs=cap, functions=_functions(harness, args),
        jobs=args.jobs, journal_path=args.journal,
        progress=_progress, equivalence=True,
        equiv_pilots=args.pilots, equiv_audit=args.audit,
        prune_dead=args.prune_dead)
    equiv = results.meta["equivalence"]
    if args.json:
        json.dump(equiv, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        accuracy = equiv["audit_accuracy"]
        print("equivalence campaign %s: %d results, injected %d "
              "(fraction %.4f), extrapolated %d"
              % (args.campaign, len(results), equiv["injected"],
                 equiv["injected_fraction"], equiv["extrapolated"]))
        print("audit %d/%d (%s), %d impure class(es), %d split(s), "
              "%d re-pilot run(s)"
              % (equiv["audit_matched"], equiv["audit_checked"],
                 "accuracy %.4f" % accuracy
                 if accuracy is not None else "no audits",
                 equiv["impure_classes"], equiv["splits"],
                 equiv["repilot_runs"]))
    if args.save:
        results.save(args.save)
        print("results -> %s" % args.save, file=sys.stderr)
    return 0


def cmd_audit(args):
    from repro.staticanalysis.equivalence import journal_extrapolation
    census = journal_extrapolation(args.journal)
    if args.json:
        json.dump(census, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0 if not census["malformed"] else 1
    print("%s: %d executed, %d extrapolated, %d carried, "
          "%d malformed"
          % (args.journal, census["executed"], census["extrapolated"],
             census["carried"], census["malformed"]))
    for fp, count in sorted(census["provenance"].items()):
        print("  class %s: %d extrapolated member(s)" % (fp, count))
    if census["malformed"]:
        print("MALFORMED: %d extrapolated record(s) missing "
              "{pilot_index, class_fp} provenance"
              % census["malformed"])
        return 1
    return 0


def _add_equiv_options(parser):
    from repro.tools.faultcli import add_campaign_options
    add_campaign_options(parser)
    parser.add_argument("--functions", nargs="+", default=None,
                        metavar="NAME",
                        help="restrict the plan to these campaign "
                             "targets")
    parser.add_argument("--pilots", type=int, default=2,
                        help="pilots per class (default 2)")
    parser.add_argument("--audit", type=float, default=0.15,
                        help="audit fraction of non-pilot members "
                             "(default 0.15)")
    parser.add_argument("--prune-dead", action="store_true",
                        help="drop statically dead sites before "
                             "partitioning")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_classes = sub.add_parser(
        "classes", help="print the static equivalence partition")
    _add_equiv_options(p_classes)
    p_classes.add_argument("--json", action="store_true")
    p_classes.set_defaults(func=cmd_classes)

    p_plan = sub.add_parser(
        "plan", help="print the pilot/audit selection")
    _add_equiv_options(p_plan)
    p_plan.add_argument("--json", action="store_true")
    p_plan.set_defaults(func=cmd_plan)

    p_run = sub.add_parser(
        "run", help="execute a pilot campaign with extrapolation")
    _add_equiv_options(p_run)
    p_run.add_argument("--journal", default=None,
                       help="journal path (extrapolated records are "
                            "stamped with provenance)")
    p_run.add_argument("--jobs", type=int, default=1)
    p_run.add_argument("--save", default=None,
                       help="write CampaignResults JSON")
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_audit = sub.add_parser(
        "audit", help="provenance census of a campaign journal")
    p_audit.add_argument("journal")
    p_audit.add_argument("--json", action="store_true")
    p_audit.set_defaults(func=cmd_audit)

    args = parser.parse_args(argv)
    args.parser = parser
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
