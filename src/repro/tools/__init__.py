"""Command-line utilities: objdump/ksymoops equivalents for the kernel."""
