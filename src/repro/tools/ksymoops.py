#!/usr/bin/env python3
"""Annotate a crash by re-running one injection (ksymoops equivalent).

    python3 -m repro.tools.ksymoops FUNCTION BYTE BIT [--workload W]

Re-runs a single-bit injection against the named kernel function (bit
BIT of byte BYTE of its first instruction, or use --addr-offset to pick
another instruction) and prints the fully symbolized oops report:
registers, the corrupted code listing, the call-trace guess, a TRACE
section with the last branches the flight recorder saw before the
oops (LBR-style; disable with --no-trace), a STATIC section
comparing the symbolic error-propagation verdict (predicted trap
classes and latency bounds) against what actually happened, and an
EQUIV section placing the site in its static equivalence class
(class fingerprint, pilot-or-member role, function-local class size
and the audit verdict of the observed crash against the class's
predicted trap set; disable with --no-equiv).

``--model`` swaps the instruction flip for any pluggable fault model
(memory state, register, register-at-trap, intermittent, disk); the
dump is then annotated with the delivered fault, e.g.
``FAULT: reg flip edx bit 17 @ trap entry``.
"""

import argparse
import sys

from repro.analysis.oops import annotate_crash, static_verdict_section
from repro.injection.runner import BOOT_MARKER, InjectionHarness
from repro.kernel.build import build_kernel
from repro.machine.machine import Machine, build_standard_disk
from repro.profiling.sampler import profile_kernel
from repro.tools.faultcli import add_model_options, arm_fault, \
    fault_from_args, site_spec
from repro.userland.build import build_all_programs
from repro.userland.programs import WORKLOADS


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("function")
    parser.add_argument("byte", type=int)
    parser.add_argument("bit", type=int)
    parser.add_argument("--addr-offset", type=int, default=0,
                        help="offset from the function start")
    parser.add_argument("--workload", default=None)
    parser.add_argument("--recovery", action="store_true",
                        help="boot a recovery kernel (oops kills the "
                             "task and the machine runs on; every dump "
                             "is annotated, recovered ones marked)")
    parser.add_argument("--no-cfg", action="store_true",
                        help="omit the faulting basic block / CFG "
                             "predecessor annotation")
    parser.add_argument("--no-static", action="store_true",
                        help="omit the predicted-vs-actual static "
                             "verdict section")
    parser.add_argument("--no-equiv", action="store_true",
                        help="omit the equivalence-class (EQUIV) "
                             "section")
    parser.add_argument("--no-trace", action="store_true",
                        help="run without the flight recorder (omits "
                             "the TRACE branch-history section)")
    parser.add_argument("--trace-depth", type=int, default=8,
                        help="branches to show in the TRACE section "
                             "(default 8)")
    add_model_options(parser)
    args = parser.parse_args(argv)

    kernel = build_kernel()
    binaries = build_all_programs()
    info = next((f for f in kernel.functions
                 if f.name == args.function), None)
    if info is None:
        parser.error("unknown kernel function %r" % args.function)

    workload = args.workload
    if workload is None:
        profile = profile_kernel(kernel, binaries, WORKLOADS)
        harness = InjectionHarness(kernel, binaries, profile)
        workload = harness.workload_priority(args.function)[0]
    print("driving workload: %s" % workload, file=sys.stderr)

    machine = Machine(kernel, build_standard_disk(binaries, workload))
    if args.recovery:
        machine.enable_recovery()
    machine.run_until_console(BOOT_MARKER)
    if not args.no_trace:
        # A bounded ring is plenty for last-N branch history and keeps
        # long runs cheap.
        machine.enable_trace(capacity=4096)
    target = info.start + args.addr_offset

    flip_state = {}
    fault_line = None
    fault = fault_from_args(args)
    if fault is None:
        def flip(m):
            flip_state["tsc"] = m.cpu.cycles
            m.flip_bit(target + args.byte, args.bit)

        machine.arm_breakpoint(target, flip)
    else:
        spec = site_spec(info, target, fault, workload=workload)
        model = arm_fault(kernel, machine, spec, flip_state)
        fault_line = model.describe(spec)
        print("%s (trigger: %s+%#x)"
              % (fault_line, args.function, args.addr_offset),
              file=sys.stderr)
    # The static pre-classifier reasons about instruction-stream
    # corruption only; other models have no prediction to compare.
    want_static = not args.no_static and args.model in (None, "instr")
    want_equiv = not args.no_equiv and args.model in (None, "instr")
    result = machine.run(max_cycles=60_000_000)
    print("run status: %s (exit %r)" % (result.status, result.exit_code))
    if fault is not None and "tsc" not in flip_state:
        print("note: fault never delivered (not activated)")
    if not result.crashes:
        print("no crash dump recorded; console tail:")
        print(result.console[-400:])
        if want_static:
            print("STATIC (no crash to compare):")
            for line in static_verdict_section(
                    kernel, args.function, target, args.byte,
                    args.bit):
                print("  " + line)
        if want_equiv:
            from repro.staticanalysis.equivalence import \
                describe_site_class
            for line in describe_site_class(
                    kernel, args.function, target, args.byte,
                    args.bit):
                print(line)
        return 1
    for index, crash in enumerate(result.crashes):
        if index:
            print()
        print(annotate_crash(kernel, crash, machine=machine,
                             cfg_context=not args.no_cfg,
                             trace=result.trace,
                             trace_depth=args.trace_depth))
        if fault_line is not None:
            print(fault_line)
        if want_static:
            latency = None
            if flip_state.get("tsc") is not None:
                latency = max(0, crash.tsc - flip_state["tsc"])
            print("STATIC:")
            for line in static_verdict_section(
                    kernel, args.function, target, args.byte,
                    args.bit, crash=crash, latency=latency):
                print("  " + line)
        if want_equiv:
            from repro.injection.outcomes import crash_cause_name
            from repro.staticanalysis.equivalence import \
                describe_site_class
            for line in describe_site_class(
                    kernel, args.function, target, args.byte,
                    args.bit,
                    crash_cause=crash_cause_name(crash.vector,
                                                 crash.cr2)):
                print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
