#!/usr/bin/env python3
"""Lint the built kernel image (static CFG/dataflow invariants).

    python3 -m repro.tools.kerncheck
    python3 -m repro.tools.kerncheck --subsystem fs
    python3 -m repro.tools.kerncheck --rule stack-imbalance --format json
    python3 -m repro.tools.kerncheck --format sarif > kerncheck.sarif
    python3 -m repro.tools.kerncheck --rule propagation-leak sys_open

Runs :class:`repro.staticanalysis.linter.KernelLinter` over every
function (or a subset) and prints one line per finding.  Exit status is
the number of findings (capped at 125), so ``make lint-kernel`` fails
the build when an invariant regresses.

``--format json`` emits a machine-readable report (tool metadata +
findings array); ``--format sarif`` emits SARIF 2.1.0 so CI systems
can annotate findings natively.  The default remains the one-line-per-
finding text output.  Opt-in rules (``propagation-leak``,
``fingerprint-opaque``) run only when named explicitly with
``--rule``; the text summary line always reports the image's
fingerprint-opaque count so the delta-campaign tax stays visible even
in default runs.
"""

import argparse
import json
import sys

from repro.kernel.build import build_kernel
from repro.staticanalysis.linter import (
    OPTIONAL_RULES,
    RULES,
    KernelLinter,
)

#: One-line help per rule, surfaced in the SARIF tool metadata.
_RULE_DESCRIPTIONS = {
    "unreachable-block": "a basic block no edge reaches",
    "fall-off-end": "control can run past the function's last byte",
    "uncovered-uaccess": "user-pointer dereference without fixup or"
                         " guard",
    "stack-imbalance": "push/pop depth imbalance on some path",
    "propagation-leak": "corrupted definitions can escape the home"
                        " subsystem",
    "fingerprint-opaque": "outgoing edges not statically enumerable;"
                          " impacted by every delta-campaign change",
}


def findings_json(findings, functions):
    """The ``--format json`` report object."""
    return {
        "tool": "kerncheck",
        "functions_linted": len(functions),
        "finding_count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }


def findings_sarif(findings):
    """A minimal SARIF 2.1.0 log for CI annotation.

    The kernel image has no source files, so each location is encoded
    as the function name (artifact) plus the instruction address in
    the message; severity is uniformly "warning" (the exit status is
    what gates CI).
    """
    rules_used = sorted({f.rule for f in findings}) or sorted(RULES)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "kerncheck",
                    "informationUri":
                        "docs/static-analysis.md",
                    "rules": [
                        {
                            "id": rule,
                            "shortDescription": {
                                "text": _RULE_DESCRIPTIONS.get(
                                    rule, rule),
                            },
                        }
                        for rule in rules_used
                    ],
                },
            },
            "results": [
                {
                    "ruleId": f.rule,
                    "level": "warning",
                    "message": {
                        "text": "%s @ %#010x: %s"
                                % (f.function, f.addr, f.message),
                    },
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": "kernel://" + f.function,
                            },
                            "region": {
                                "byteOffset": f.addr,
                            },
                        },
                    }],
                }
                for f in findings
            ],
        }],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("functions", nargs="*",
                        help="function names to lint (default: all)")
    parser.add_argument("--subsystem",
                        help="restrict to one subsystem (arch/fs/...)")
    parser.add_argument("--rule", action="append",
                        choices=RULES + OPTIONAL_RULES,
                        help="run only this rule (repeatable;"
                             " opt-in rules run only when named)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None,
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_true",
                        help="alias for --format json")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)
    fmt = args.format or ("json" if args.json else "text")

    kernel = build_kernel()
    functions = sorted(kernel.functions, key=lambda f: f.start)
    if args.subsystem:
        functions = [f for f in functions
                     if f.subsystem == args.subsystem]
    if args.functions:
        wanted = set(args.functions)
        functions = [f for f in functions if f.name in wanted]
        missing = wanted - {f.name for f in functions}
        if missing:
            parser.error("unknown function(s): %s"
                         % ", ".join(sorted(missing)))

    linter = KernelLinter(kernel, rules=args.rule or RULES)
    findings = linter.lint_image(functions)

    if fmt == "json":
        json.dump(findings_json(findings, functions), sys.stdout,
                  indent=1)
        sys.stdout.write("\n")
    elif fmt == "sarif":
        json.dump(findings_sarif(findings), sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        # Deterministic order (rule, then address) so CI artifact
        # diffs are stable across linter-internal iteration order.
        for finding in sorted(findings,
                              key=lambda f: (f.rule, f.addr,
                                             f.function)):
            print(finding.format(kernel))
        if not args.quiet:
            from repro.staticanalysis.delta import opaque_functions
            opaque = opaque_functions(kernel)
            print("kerncheck: %d function(s), %d finding(s),"
                  " %d fingerprint-opaque"
                  % (len(functions), len(findings), len(opaque)))
    return min(len(findings), 125)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
