#!/usr/bin/env python3
"""Lint the built kernel image (static CFG/dataflow invariants).

    python3 -m repro.tools.kerncheck
    python3 -m repro.tools.kerncheck --subsystem fs
    python3 -m repro.tools.kerncheck --rule stack-imbalance --json

Runs :class:`repro.staticanalysis.linter.KernelLinter` over every
function (or a subset) and prints one line per finding.  Exit status is
the number of findings (capped at 125), so ``make lint-kernel`` fails
the build when an invariant regresses.
"""

import argparse
import json
import sys

from repro.kernel.build import build_kernel
from repro.staticanalysis.linter import RULES, KernelLinter


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("functions", nargs="*",
                        help="function names to lint (default: all)")
    parser.add_argument("--subsystem",
                        help="restrict to one subsystem (arch/fs/...)")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    kernel = build_kernel()
    functions = sorted(kernel.functions, key=lambda f: f.start)
    if args.subsystem:
        functions = [f for f in functions
                     if f.subsystem == args.subsystem]
    if args.functions:
        wanted = set(args.functions)
        functions = [f for f in functions if f.name in wanted]
        missing = wanted - {f.name for f in functions}
        if missing:
            parser.error("unknown function(s): %s"
                         % ", ".join(sorted(missing)))

    linter = KernelLinter(kernel, rules=args.rule or RULES)
    findings = linter.lint_image(functions)

    if args.json:
        json.dump([f.to_dict() for f in findings], sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        for finding in findings:
            print(finding.format(kernel))
        if not args.quiet:
            print("kerncheck: %d function(s), %d finding(s)"
                  % (len(functions), len(findings)))
    return min(len(findings), 125)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
