#!/usr/bin/env python3
"""Plan, run, merge and compare distributed campaign shards.

    python3 -m repro.tools.kfabric plan A [--shards N] [options]
    python3 -m repro.tools.kfabric run A --shard i/N --journal P [opts]
    python3 -m repro.tools.kfabric merge J1 J2 ... [--save OUT] [opts]
    python3 -m repro.tools.kfabric campaign A [--shards N] [options]
    python3 -m repro.tools.kfabric equal A.json B.json

``plan`` prints the deterministic shard table of a campaign plan —
every participating host computes the identical table from (campaign,
seed, stride, cap), so the shard fingerprint is the only coordination
needed.  ``run --shard i/N`` executes exactly one shard and appends to
its journal (resumable: rerunning a killed shard picks up where the
journal ends), which is the unit a CI matrix or ``parallel kfabric run
A --shard {}/8 ::: $(seq 0 7)`` distributes.  ``merge`` combines shard
journals exactly-once into a canonical campaign journal and/or a
results JSON; ``campaign`` does plan + pooled run + merge in one
process via the crash-tolerant coordinator; ``equal`` exits non-zero
unless two results files are bit-identical (the CI gate).

``--store DIR`` points any command at a shared boot-snapshot store so
a kernel/workload pair boots once per store, not once per shard.
"""

import argparse
import json
import os
import sys

from repro.injection.fabric import (
    FabricConfig,
    FabricCoordinator,
    MergeError,
    SnapshotStore,
    merge_shard_journals,
    plan_shards,
    run_shard,
)
from repro.injection.engine import plan_fingerprint
from repro.injection.runner import CampaignResults, InjectionHarness


def _add_plan_options(parser):
    parser.add_argument("campaign", help="campaign key (A, B, C, ...)")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--stride", type=int, default=None,
                        help="byte stride (default from --scale)")
    parser.add_argument("--max-specs", type=int, default=None,
                        help="spec cap (default from --scale)")
    parser.add_argument("--scale", default="quick",
                        help="sizing preset supplying stride/cap "
                             "defaults (tiny/quick/standard/full)")
    parser.add_argument("--store", default=None,
                        help="boot-snapshot store directory (shared "
                             "across shards: one boot per "
                             "kernel/workload pair)")


def _scale_params(args):
    from repro.experiments.context import SCALES
    stride, cap = args.stride, args.max_specs
    if stride is None or cap is None:
        preset = SCALES[args.scale][args.campaign]
        stride = preset[0] if stride is None else stride
        cap = preset[1] if cap is None else cap
    return stride, cap


def _parse_shard(text, parser):
    try:
        index, count = text.split("/")
        index, count = int(index), int(count)
    except ValueError:
        parser.error("--shard wants i/N (e.g. 0/3), not %r" % text)
    if not 0 <= index < count:
        parser.error("shard index %d outside 0..%d" % (index, count - 1))
    return index, count


def _build_harness(args):
    from repro.kernel.build import build_kernel
    from repro.profiling.sampler import profile_kernel
    from repro.userland.build import build_all_programs
    from repro.userland.programs import WORKLOADS
    print("building kernel + profiling workloads...", file=sys.stderr)
    kernel = build_kernel()
    binaries = build_all_programs()
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    store = SnapshotStore(args.store) if args.store else None
    return InjectionHarness(kernel, binaries, profile,
                            snapshot_store=store)


def _plan(harness, args):
    stride, cap = _scale_params(args)
    functions, specs = harness.plan_specs(
        args.campaign, seed=args.seed, byte_stride=stride,
        max_specs=cap)
    plan_fp = plan_fingerprint(args.campaign, specs, args.seed, stride)
    return specs, stride, plan_fp


def _progress(done, total, result):
    if done % 25 == 0 or done == total:
        print("  %d/%d (%s)" % (done, total, result.outcome),
              file=sys.stderr, flush=True)


def _save_results(path, campaign, results, seed, stride, plan_fp,
                  extra_meta=None):
    meta = {"campaign": campaign, "seed": seed, "byte_stride": stride,
            "injected": len(results), "fingerprint": plan_fp}
    if extra_meta:
        meta.update(extra_meta)
    CampaignResults(campaign, results, meta).save(path)
    print("results -> %s" % path, file=sys.stderr)


def cmd_plan(args):
    harness = _build_harness(args)
    specs, stride, plan_fp = _plan(harness, args)
    shards = plan_shards(plan_fp, len(specs), args.shards)
    if args.json:
        json.dump({
            "campaign": args.campaign, "seed": args.seed,
            "byte_stride": stride, "n_specs": len(specs),
            "plan_fingerprint": plan_fp,
            "shards": [{"shard": "%d/%d" % (s.index, s.count),
                        "fingerprint": s.fingerprint,
                        "n_specs": len(s.indices)} for s in shards],
        }, sys.stdout, indent=2)
        print()
        return 0
    print("campaign %s seed %d stride %d: %d specs, plan %s"
          % (args.campaign, args.seed, stride, len(specs), plan_fp))
    for shard in shards:
        print("  shard %d/%d  %s  %4d specs"
              % (shard.index, shard.count, shard.fingerprint,
                 len(shard.indices)))
    return 0


def cmd_run(args):
    index, count = _parse_shard(args.shard, args.parser)
    harness = _build_harness(args)
    specs, stride, plan_fp = _plan(harness, args)
    shard = plan_shards(plan_fp, len(specs), count)[index]
    print("shard %d/%d of plan %s: %d of %d specs -> %s"
          % (index, count, plan_fp, len(shard.indices), len(specs),
             args.journal), file=sys.stderr)
    results, meta = run_shard(
        harness, args.campaign, specs, args.seed, stride, shard,
        args.journal, jobs=args.jobs, resume=not args.fresh,
        progress=_progress)
    print("shard done: %d results (%d resumed, %d boots)"
          % (len(results), meta.get("resumed_results", 0),
             harness.boots), file=sys.stderr)
    if args.save:
        if count != 1:
            args.parser.error("--save wants the full campaign; only "
                              "--shard 0/1 runs produce one")
        _save_results(args.save, args.campaign, results, args.seed,
                      stride, plan_fp, extra_meta={"engine": meta})
    return 0


def cmd_merge(args):
    try:
        merged = merge_shard_journals(args.journals)
    except MergeError as exc:
        print("merge FAILED: %s" % exc, file=sys.stderr)
        return 1
    print("merged %d journal(s): plan %s, %d/%d results, "
          "%d replayed record(s) deduplicated"
          % (merged.journals, merged.plan_fingerprint,
             len(merged.results), merged.n_specs, merged.replayed))
    if merged.missing:
        preview = ", ".join(map(str, merged.missing[:8]))
        print("missing %d indices (%s%s)"
              % (len(merged.missing), preview,
                 ", ..." if len(merged.missing) > 8 else ""))
    if args.out:
        merged.write_journal(args.out)
        print("canonical journal -> %s" % args.out, file=sys.stderr)
    if args.save:
        try:
            ordered = merged.ordered()
        except MergeError as exc:
            print("merge FAILED: %s" % exc, file=sys.stderr)
            return 1
        _save_results(args.save, merged.campaign, ordered,
                      merged.seed, None, merged.plan_fingerprint,
                      extra_meta={"replayed": merged.replayed,
                                  "journals": merged.journals})
    if args.expect_complete and merged.missing:
        return 1
    return 0


def cmd_campaign(args):
    harness = _build_harness(args)
    stride, cap = _scale_params(args)
    config = FabricConfig(pool=args.pool, shard_jobs=args.jobs,
                          chaos_kills=args.chaos,
                          chaos_seed=args.seed,
                          lease_timeout=args.lease_timeout)
    coordinator = FabricCoordinator(harness, config)
    results = coordinator.run_campaign(
        args.campaign, seed=args.seed, byte_stride=stride,
        max_specs=cap, shard_count=args.shards, workdir=args.workdir)
    engine = results.meta["engine"]
    print("campaign %s via fabric: %d results, %d shards, pool %d, "
          "%d worker failure(s), %d stolen, %d boots"
          % (args.campaign, len(results), args.shards, args.pool,
             engine["worker_failures"], engine["stolen_shards"],
             harness.boots))
    if args.save:
        results.save(args.save)
        print("results -> %s" % args.save, file=sys.stderr)
    return 0


def cmd_equal(args):
    first = CampaignResults.load(args.first)
    second = CampaignResults.load(args.second)
    a = [r.to_dict() for r in first.results]
    b = [r.to_dict() for r in second.results]
    if a == b:
        print("identical: %d results" % len(a))
        return 0
    if len(a) != len(b):
        print("DIFFER: %d vs %d results" % (len(a), len(b)))
        return 1
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            fields = sorted(k for k in left
                            if left.get(k) != right.get(k))
            print("DIFFER: first at index %d (fields: %s)"
                  % (index, ", ".join(fields)))
            break
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="print the shard table")
    _add_plan_options(p_plan)
    p_plan.add_argument("--shards", type=int, default=3)
    p_plan.add_argument("--json", action="store_true")
    p_plan.set_defaults(func=cmd_plan)

    p_run = sub.add_parser("run", help="run one shard of a campaign")
    _add_plan_options(p_run)
    p_run.add_argument("--shard", required=True, metavar="i/N",
                       help="which slice of the plan to run")
    p_run.add_argument("--journal", required=True,
                       help="shard journal path (appended/resumed)")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="parallel workers inside the shard")
    p_run.add_argument("--fresh", action="store_true",
                       help="overwrite the journal instead of resuming")
    p_run.add_argument("--save", default=None,
                       help="write CampaignResults JSON (0/1 only)")
    p_run.set_defaults(func=cmd_run)

    p_merge = sub.add_parser("merge",
                             help="merge shard journals exactly-once")
    p_merge.add_argument("journals", nargs="+")
    p_merge.add_argument("--out", default=None,
                         help="write the canonical merged journal")
    p_merge.add_argument("--save", default=None,
                         help="write CampaignResults JSON (complete "
                              "merges only)")
    p_merge.add_argument("--expect-complete", action="store_true",
                         help="exit non-zero if any index is missing")
    p_merge.set_defaults(func=cmd_merge)

    p_campaign = sub.add_parser(
        "campaign", help="plan + pooled run + merge in one process")
    _add_plan_options(p_campaign)
    p_campaign.add_argument("--shards", type=int, default=3)
    p_campaign.add_argument("--pool", type=int, default=2)
    p_campaign.add_argument("--jobs", type=int, default=1)
    p_campaign.add_argument("--chaos", type=int, default=0,
                            help="SIGKILL this many shard workers "
                                 "mid-run (they are retried)")
    p_campaign.add_argument("--lease-timeout", type=float,
                            default=120.0)
    p_campaign.add_argument("--workdir", required=True,
                            help="shard journal/heartbeat directory")
    p_campaign.add_argument("--save", default=None,
                            help="write CampaignResults JSON")
    p_campaign.set_defaults(func=cmd_campaign)

    p_equal = sub.add_parser(
        "equal", help="gate two results files on bit-identity")
    p_equal.add_argument("first")
    p_equal.add_argument("second")
    p_equal.set_defaults(func=cmd_equal)

    args = parser.parse_args(argv)
    args.parser = parser
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
