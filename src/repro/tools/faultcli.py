"""Shared CLI plumbing for the fault-injection tools.

``--model`` helpers (ksymoops, ktrace): both tools historically
hardwired the instruction-stream flip; these helpers let them arm any
:mod:`repro.injection.faultmodels` model at a (function, byte, bit)
site and print the matching ``FAULT:`` annotation, e.g.::

    FAULT: reg flip edx bit 17 @ trap entry

Campaign-sizing helpers (kdelta, kequiv): the shared
``campaign --seed --stride --max-specs --scale`` option group and the
scale-preset resolution both campaign CLIs size their plans with.
"""

from repro.injection.campaigns import InjectionSpec
from repro.injection.faultmodels import MODELS, resolve_model
from repro.isa.registers import REG_NAMES

#: Kinds a CLI site maps onto (``reg``/``reg_trap`` reuse BIT for the
#: register bit, ``mem`` reuses BYTE as the region offset).
MODEL_CHOICES = ("instr", "mem", "reg", "reg_trap", "intermittent",
                 "disk")


def add_campaign_options(parser):
    """Install the shared campaign sizing options (kdelta, kequiv)."""
    parser.add_argument("campaign", help="campaign key (A, B, C, ...)")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--stride", type=int, default=None,
                        help="byte stride (default from --scale)")
    parser.add_argument("--max-specs", type=int, default=None,
                        help="spec cap (default from --scale)")
    parser.add_argument("--scale", default="quick",
                        help="sizing preset supplying stride/cap "
                             "defaults (tiny/quick/standard/full)")


def scale_params(args):
    """Resolve ``(byte_stride, max_specs)`` from the parsed options."""
    from repro.experiments.context import SCALES
    stride, cap = args.stride, args.max_specs
    if stride is None or cap is None:
        preset = SCALES[args.scale][args.campaign]
        stride = preset[0] if stride is None else stride
        cap = preset[1] if cap is None else cap
    return stride, cap


def add_model_options(parser):
    """Install the ``--model`` option group on an argparse parser."""
    group = parser.add_argument_group(
        "fault model",
        "inject through a pluggable fault model instead of the "
        "default instruction-stream flip")
    group.add_argument("--model", default=None, choices=MODEL_CHOICES,
                       help="fault model to arm at the trigger site "
                            "(default: plain instruction flip)")
    group.add_argument("--region", default="stack",
                       choices=MODELS["mem"].REGIONS,
                       help="mem model: region to corrupt (BYTE is "
                            "the offset into it, BIT the bit)")
    group.add_argument("--reg", default="eax", choices=REG_NAMES,
                       help="reg/reg_trap models: register to flip "
                            "(BIT selects the bit)")
    group.add_argument("--duration", type=int, default=1200,
                       help="intermittent model: cycles before the "
                            "corruption is restored")
    group.add_argument("--disk-fault", default="corrupt",
                       choices=MODELS["disk"].FAULTS,
                       help="disk model: controller fault to arm")
    group.add_argument("--ops", type=int, default=1,
                       help="disk transient fault: reads that fail "
                            "before the media recovers")


def fault_from_args(args):
    """The ``fault_model`` dict for the parsed CLI, or None."""
    if args.model is None:
        return None
    byte, bit = args.byte, args.bit
    if args.model == "instr":
        return {"kind": "instr", "v": 1, "bits": [[byte, bit]]}
    if args.model == "mem":
        return {"kind": "mem", "v": 1, "region": args.region,
                "offset": byte, "bits": [bit]}
    if args.model in ("reg", "reg_trap"):
        return {"kind": args.model, "v": 1,
                "reg": REG_NAMES.index(args.reg), "bit": bit}
    if args.model == "intermittent":
        return {"kind": "intermittent", "v": 1, "bits": [[byte, bit]],
                "duration": args.duration}
    return {"kind": "disk", "v": 1, "fault": args.disk_fault,
            "byte": byte, "bit": bit, "ops": args.ops}


def site_spec(info, target, fault, workload=None):
    """A one-off InjectionSpec for a CLI-selected trigger site."""
    return InjectionSpec(
        campaign="X", function=info.name, subsystem=info.subsystem,
        instr_addr=target, instr_len=1, byte_offset=0, bit=0,
        mnemonic="cli:%s" % fault["kind"], workload=workload,
        fault_model=fault)


class _HarnessShim:
    """The slice of InjectionHarness that FaultModel.arm consumes."""

    def __init__(self, kernel):
        self.kernel = kernel


def arm_fault(kernel, machine, spec, state):
    """Arm *spec*'s fault model on *machine*; returns the model."""
    model = resolve_model(spec)
    model.arm(_HarnessShim(kernel), machine, spec, state)
    return model
