#!/usr/bin/env python3
"""Check an ext2lite image file (host-side fsck front-end).

    python3 -m repro.tools.fsck IMAGE [--repair REPAIRED_IMAGE]

Prints the §7.1 severity classification (clean / dirty / inconsistent /
unrecoverable) and every issue found; with ``--repair`` also writes the
repaired image.  Exit status: 0 clean, 1 dirty, 2 inconsistent,
3 unrecoverable.
"""

import argparse
import sys

from repro.machine.disk import fsck

_EXIT = {"clean": 0, "dirty": 1, "inconsistent": 2, "unrecoverable": 3}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("image")
    parser.add_argument("--repair", metavar="OUT",
                        help="write a repaired image here")
    args = parser.parse_args(argv)
    with open(args.image, "rb") as fh:
        image = fh.read()
    report = fsck(image, repair=args.repair is not None)
    print("status: %s" % report.status)
    for issue in report.issues:
        print("  - %s" % issue)
    if args.repair and report.repaired is not None:
        with open(args.repair, "wb") as fh:
            fh.write(report.repaired)
        print("repaired image written to %s" % args.repair)
    return _EXIT[report.status]


if __name__ == "__main__":
    sys.exit(main())
