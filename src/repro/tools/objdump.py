#!/usr/bin/env python3
"""Disassemble the simulated kernel (objdump -d equivalent).

    python3 -m repro.tools.objdump [function ...]
    python3 -m repro.tools.objdump --list
    python3 -m repro.tools.objdump --subsystem fs

With no arguments, disassembles every kernel function.  ``--list``
prints the symbol table (address, size, subsystem, name).
"""

import argparse
import sys

from repro.isa.decoder import decode_all
from repro.isa.disasm import format_instr
from repro.kernel.build import build_kernel


def disassemble_function(kernel, info, out=sys.stdout):
    out.write("\n%08x <%s>:   ; %s, %d bytes\n"
              % (info.start, info.name, info.subsystem, info.size))
    code = kernel.code[info.start - kernel.base:info.end - kernel.base]
    for ins in decode_all(code, base=info.start):
        hex_bytes = " ".join("%02x" % b for b in ins.raw)
        out.write("%8x:\t%-24s\t%s\n"
                  % (ins.addr, hex_bytes, format_instr(ins)))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("functions", nargs="*",
                        help="function names to disassemble")
    parser.add_argument("--list", action="store_true",
                        help="print the symbol table only")
    parser.add_argument("--subsystem",
                        help="restrict to one subsystem (arch/fs/...)")
    args = parser.parse_args(argv)

    kernel = build_kernel()
    functions = sorted(kernel.functions, key=lambda f: f.start)
    if args.subsystem:
        functions = [f for f in functions
                     if f.subsystem == args.subsystem]
    if args.functions:
        wanted = set(args.functions)
        functions = [f for f in functions if f.name in wanted]
        missing = wanted - {f.name for f in functions}
        if missing:
            parser.error("unknown function(s): %s"
                         % ", ".join(sorted(missing)))
    if args.list:
        for info in functions:
            print("%08x %6d %-8s %s"
                  % (info.start, info.size, info.subsystem, info.name))
        return 0
    for info in functions:
        disassemble_function(kernel, info)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
