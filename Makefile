# Convenience targets for the reproduction.

PY ?= python3

.PHONY: install test bench bench-static bench-trace bench-fabric \
	bench-delta bench-equiv bench-jit ci lint-kernel experiments \
	experiments-full clean

install:
	pip install -e .

test:
	$(PY) -m pytest tests/

# Static lint of the built kernel image (docs/static-analysis.md);
# exit status is the number of findings.
lint-kernel:
	PYTHONPATH=src $(PY) -m repro.tools.kerncheck
	PYTHONPATH=src $(PY) -m repro.tools.kerncheck --format json \
		> /dev/null

# What .github/workflows/ci.yml runs: lint (when available) + the
# kernel-image linter + tier-1 + the smoke studies.
ci:
	@if $(PY) -m flake8 --version >/dev/null 2>&1; then \
		$(PY) -m flake8 src tests; \
	else \
		echo "flake8 not installed; skipping lint"; \
	fi
	$(MAKE) lint-kernel
	@if $(PY) -c "import pytest_cov" >/dev/null 2>&1; then \
		PYTHONPATH=src $(PY) -m pytest -x -q --cov=repro \
			--cov-report=term --cov-fail-under=65; \
	else \
		echo "pytest-cov not installed; running without coverage"; \
		PYTHONPATH=src $(PY) -m pytest -x -q; \
	fi
	PYTHONPATH=src $(PY) -m repro.experiments.recovery_study --smoke
	PYTHONPATH=src $(PY) -m repro.experiments.static_validation --smoke
	PYTHONPATH=src $(PY) -m repro.experiments.static_propagation --smoke
	PYTHONPATH=src $(PY) -m repro.experiments.trace_validation --smoke
	PYTHONPATH=src $(PY) -m repro.experiments.fault_model_study --smoke
	PYTHONPATH=src $(PY) -m repro.experiments.fault_model_study --smoke \
		--translate
	PYTHONPATH=src $(PY) -m repro.experiments.fabric_validation --smoke
	PYTHONPATH=src $(PY) -m repro.experiments.delta_validation --smoke
	PYTHONPATH=src $(PY) -m repro.experiments.equivalence_validation \
		--smoke --jobs 4
	PYTHONPATH=src $(PY) benchmarks/bench_trace.py --smoke --gate 1.5
	PYTHONPATH=src $(PY) benchmarks/bench_jit.py --smoke --gate 3.0
	PYTHONPATH=src $(PY) benchmarks/bench_fabric.py --smoke
	PYTHONPATH=src $(PY) benchmarks/bench_delta.py --smoke \
		--max-fraction 0.5
	PYTHONPATH=src $(PY) benchmarks/bench_equiv.py --smoke --jobs 4 \
		--max-fraction 0.5

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Whole-image static-analysis timings -> BENCH_static.json.
bench-static:
	PYTHONPATH=src $(PY) benchmarks/bench_static.py

# Flight-recorder overhead -> BENCH_trace.json (gate: <= 1.5x).
bench-trace:
	PYTHONPATH=src $(PY) benchmarks/bench_trace.py --gate 1.5

# Campaign-fabric boot amortization -> BENCH_fabric.json (gate: a warm
# snapshot store means zero kernel boots).
bench-fabric:
	PYTHONPATH=src $(PY) benchmarks/bench_fabric.py

# Delta-campaign reuse on a one-function edit -> BENCH_delta.json
# (gates: delta == scratch bit-identical, re-run fraction <= 0.5,
# wall-clock speedup >= 1).
bench-delta:
	PYTHONPATH=src $(PY) benchmarks/bench_delta.py --max-fraction 0.5

# Equivalence-class pruning -> BENCH_equiv.json (gate: injected
# fraction <= 0.5; extrapolation accuracy and speedup reported).
bench-equiv:
	PYTHONPATH=src $(PY) benchmarks/bench_equiv.py --max-fraction 0.5

# Translated-execution speedup -> BENCH_jit.json (gate: >= 3x over
# the interpreter on the syscall workload, bit-identical).
bench-jit:
	PYTHONPATH=src $(PY) benchmarks/bench_jit.py --gate 3.0

# EXPERIMENTS.md at the default (quick) scale; standard takes ~1 h.
experiments:
	$(PY) scripts/run_experiments.py quick EXPERIMENTS.md

experiments-full:
	$(PY) scripts/run_experiments.py standard EXPERIMENTS.md

clean:
	rm -rf .pytest_cache .benchmarks results
	find . -name __pycache__ -type d -exec rm -rf {} +
