# Convenience targets for the reproduction.

PY ?= python3

.PHONY: install test bench experiments experiments-full clean

install:
	pip install -e .

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# EXPERIMENTS.md at the default (quick) scale; standard takes ~1 h.
experiments:
	$(PY) scripts/run_experiments.py quick EXPERIMENTS.md

experiments-full:
	$(PY) scripts/run_experiments.py standard EXPERIMENTS.md

clean:
	rm -rf .pytest_cache .benchmarks results
	find . -name __pycache__ -type d -exec rm -rf {} +
