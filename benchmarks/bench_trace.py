#!/usr/bin/env python3
"""Measure the flight recorder's overhead; emit BENCH_trace.json.

Runs the same golden boot + workload three ways — untraced, traced on
the default channels (branch + trap), and traced on every channel
(branch + trap + write + subsys) — and reports best-of-N wall time,
simulated cycles/second and the overhead ratio of each traced
configuration against the untraced baseline.

The acceptance bar for the tracer is an overhead ratio <= 1.5x on the
default channels; ``--gate`` makes the benchmark exit non-zero beyond
a bound so CI can enforce it.

Run from the repo root::

    PYTHONPATH=src python3 benchmarks/bench_trace.py [--smoke]
        [--gate 1.5] [--output PATH]
"""

import argparse
import json
import sys
import time

#: (label, channels) measured against the untraced baseline.
_CONFIGS = (
    ("default", ("branch", "trap")),
    ("all", ("branch", "trap", "write", "subsys")),
)


def _one_run(kernel, binaries, workload, channels):
    from repro.machine.machine import Machine, build_standard_disk

    machine = Machine(kernel, build_standard_disk(binaries, workload))
    if channels is not None:
        machine.enable_trace(channels=channels)
    start = time.perf_counter()
    result = machine.run(max_cycles=120_000_000)
    elapsed = time.perf_counter() - start
    if result.status != "shutdown" or result.exit_code != 0:
        raise RuntimeError("benchmark run failed: %r" % result)
    return elapsed, result


def _best_of(repeats, kernel, binaries, workload, channels):
    best, trace = None, None
    for _ in range(repeats):
        elapsed, result = _one_run(kernel, binaries, workload, channels)
        if best is None or elapsed < best:
            best, trace = elapsed, result.trace
    return best, result.cycles, trace


def run_benchmarks(workload="syscall", repeats=3):
    from repro.kernel.build import build_kernel
    from repro.userland.build import build_all_programs

    kernel = build_kernel()
    binaries = build_all_programs()

    record = {"tool": "bench_trace", "workload": workload,
              "repeats": repeats}
    base_s, cycles, _ = _best_of(repeats, kernel, binaries, workload,
                                 None)
    base_cps = cycles / base_s
    record["cycles"] = cycles
    record["untraced_s"] = round(base_s, 4)
    record["untraced_cps"] = round(base_cps, 1)

    for label, channels in _CONFIGS:
        traced_s, traced_cycles, trace = _best_of(
            repeats, kernel, binaries, workload, channels)
        if traced_cycles != cycles:
            raise RuntimeError(
                "traced run not cycle-identical: %d vs %d"
                % (traced_cycles, cycles))
        cps = cycles / traced_s
        record["traced_%s_s" % label] = round(traced_s, 4)
        record["traced_%s_cps" % label] = round(cps, 1)
        record["overhead_%s" % label] = round(base_cps / cps, 3)
        record["events_%s" % label] = trace.total_events
        record["dropped_%s" % label] = trace.dropped_events
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_trace.json")
    parser.add_argument("--workload", default="syscall")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="single repeat per configuration (CI)")
    parser.add_argument("--gate", type=float, default=None,
                        help="fail if the default-channel overhead "
                             "ratio exceeds this bound")
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else args.repeats
    record = run_benchmarks(workload=args.workload, repeats=repeats)
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print("wrote %s" % args.output, file=sys.stderr)
    if args.gate is not None and record["overhead_default"] > args.gate:
        print("GATE FAILED: overhead %.3fx > %.2fx"
              % (record["overhead_default"], args.gate),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
