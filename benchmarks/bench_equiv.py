#!/usr/bin/env python3
"""Measure equivalence-class pruning; emit BENCH_equiv.json.

Runs the same seeded campaign slice twice:

* **full** — every planned site injected (the cost the paper's
  methodology pays);
* **equiv** — the equivalence-pruned campaign: only seeded pilots +
  audits boot kernels, class siblings are extrapolated from their
  pilot's outcome, classes the audit catches impure are split and
  re-piloted (see :mod:`repro.staticanalysis.equivalence`).

Reported: the measured injected fraction, the extrapolation accuracy
(fraction of sites whose equiv outcome equals the full run's — the
external ground truth, stricter than the journal's own audit), and
the wall-clock speedup of equiv over full.  The injected fraction is
gated at ``--max-fraction`` (default 0.5): the pruning must actually
prune.

The default slice is the dormancy-heavy fs function the
``equivalence_validation`` exhibit gates (``ext2_free_all_blocks``
at byte stride 1).

Run from the repo root::

    PYTHONPATH=src python3 benchmarks/bench_equiv.py [--smoke]
        [--output PATH] [--jobs N]
"""

import argparse
import json
import os
import sys
import tempfile
import time

DEFAULT_FUNCTIONS = ("ext2_free_all_blocks",)


def run_benchmarks(campaign="A", seed=2003, stride=1, max_specs=None,
                   functions=DEFAULT_FUNCTIONS, jobs=1):
    from repro.injection.campaigns import select_targets
    from repro.injection.runner import InjectionHarness
    from repro.kernel.build import build_kernel
    from repro.profiling.sampler import profile_kernel
    from repro.userland.build import build_all_programs
    from repro.userland.programs import WORKLOADS

    kernel = build_kernel()
    binaries = build_all_programs()
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    targets = [f for f in select_targets(kernel, profile, campaign)
               if f.name in set(functions)] or None
    workdir = tempfile.mkdtemp(prefix="bench_equiv_")

    record = {"tool": "bench_equiv", "campaign": campaign,
              "seed": seed, "byte_stride": stride,
              "max_specs": max_specs, "jobs": jobs,
              "functions": sorted(functions)}

    full_harness = InjectionHarness(kernel, binaries, profile)
    start = time.perf_counter()
    full = full_harness.run_campaign(campaign, functions=targets,
                                     seed=seed, byte_stride=stride,
                                     max_specs=max_specs, jobs=jobs)
    record["full_s"] = round(time.perf_counter() - start, 3)
    record["boots_full"] = full_harness.boots
    record["n_specs"] = len(full.results)

    # Fresh harness: the equiv run pays its own golden boots and its
    # own static analysis, so the speedup is end-to-end.
    equiv_harness = InjectionHarness(kernel, binaries, profile)
    start = time.perf_counter()
    equiv = equiv_harness.run_campaign(
        campaign, functions=targets, seed=seed, byte_stride=stride,
        max_specs=max_specs, jobs=jobs, equivalence=True,
        journal_path=os.path.join(workdir, "equiv.journal.jsonl"))
    record["equiv_s"] = round(time.perf_counter() - start, 3)
    record["boots_equiv"] = equiv_harness.boots

    matched = sum(1 for a, b in zip(equiv.results, full.results)
                  if a.outcome == b.outcome)
    meta = equiv.meta["equivalence"]
    record["injected"] = meta["injected"]
    record["injected_fraction"] = meta["injected_fraction"]
    record["extrapolated"] = meta["extrapolated"]
    record["audit_accuracy"] = meta["audit_accuracy"]
    record["impure_classes"] = meta["impure_classes"]
    record["splits"] = meta["splits"]
    record["extrapolation_accuracy"] = round(
        matched / len(full.results), 4) if full.results else 1.0
    record["speedup_equiv_vs_full"] = round(
        record["full_s"] / record["equiv_s"], 3)
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_equiv.json")
    parser.add_argument("--campaign", default="A")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--stride", type=int, default=1)
    parser.add_argument("--max-specs", type=int, default=None)
    parser.add_argument("--functions", nargs="+",
                        default=list(DEFAULT_FUNCTIONS))
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--max-fraction", type=float, default=0.5,
                        help="injected-fraction ceiling enforced on "
                             "exit")
    parser.add_argument("--smoke", action="store_true",
                        help="the gated validation slice (CI)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.campaign, args.stride = "A", 1
        args.functions = list(DEFAULT_FUNCTIONS)
        args.max_specs = None
    record = run_benchmarks(campaign=args.campaign, seed=args.seed,
                            stride=args.stride,
                            max_specs=args.max_specs,
                            functions=tuple(args.functions),
                            jobs=args.jobs)
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print("wrote %s" % args.output, file=sys.stderr)
    status = 0
    if record["injected_fraction"] > args.max_fraction:
        print("GATE FAILED: injected fraction %.4f exceeds %.2f"
              % (record["injected_fraction"], args.max_fraction),
              file=sys.stderr)
        status = 1
    if record["speedup_equiv_vs_full"] < 1.0:
        print("note: equiv run slower than full on this slice "
              "(speedup %.3f)" % record["speedup_equiv_vs_full"],
              file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
