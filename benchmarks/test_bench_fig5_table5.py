"""Benchmarks for the severity exhibits (Table 5 + Figure 5)."""

from repro.experiments import fig5_case_study, table5_severe


def test_bench_table5_most_severe(ctx, campaigns, benchmark):
    text = benchmark(table5_severe.run, ctx)
    print("\n" + text)
    assert "Table 5" in text


def test_bench_fig5_case_study(ctx, campaigns, benchmark):
    text = benchmark(fig5_case_study.run, ctx)
    print("\n" + text)
    assert "Figure 5" in text
