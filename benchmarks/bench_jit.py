#!/usr/bin/env python3
"""Measure the translated fast path's speedup; emit BENCH_jit.json.

Runs the same boot + workload two ways — through the reference
interpreter and through the block-translation cache
(:mod:`repro.cpu.translate`) — asserts the two legs are
cycle/instret/console-identical, and reports best-of-N wall time,
simulated cycles/second, the speedup ratio and the translation-cache
telemetry.

The workload is the syscall exerciser lengthened to amortize
translation (the cache compiles each hot trace once and the workload
re-executes it thousands of times — the regime campaigns run in).

The acceptance bar for the fast path is a speedup >= 3x on the
syscall workload (target 10x); ``--gate`` makes the benchmark exit
non-zero below a bound so CI can enforce it.

Run from the repo root::

    PYTHONPATH=src python3 benchmarks/bench_jit.py [--smoke]
        [--gate 3.0] [--output PATH]
"""

import argparse
import json
import sys
import time

#: Workload iteration overrides: long enough that per-trace compile
#: time amortizes and the measured ratio approaches the asymptotic one.
_ITERS = {"syscall": 4000, "fstime": 400, "pipe": 400}


def _fingerprint(result):
    return (result.status, result.exit_code, result.console,
            result.cycles, result.instret)


def _one_run(kernel, binaries, workload, translate):
    from repro.machine.machine import Machine, build_standard_disk

    machine = Machine(kernel, build_standard_disk(binaries, workload),
                      translate=translate)
    start = time.perf_counter()
    result = machine.run(max_cycles=600_000_000)
    elapsed = time.perf_counter() - start
    if result.status != "shutdown" or result.exit_code != 0:
        raise RuntimeError("benchmark run failed: %r" % result)
    return elapsed, result


def _best_of(repeats, kernel, binaries, workload, translate):
    best, kept = None, None
    for _ in range(repeats):
        elapsed, result = _one_run(kernel, binaries, workload,
                                   translate)
        if best is None or elapsed < best:
            best, kept = elapsed, result
    return best, kept


def run_benchmarks(workload="syscall", repeats=3):
    from repro.kernel.build import build_kernel
    from repro.userland.build import build_all_programs

    kernel = build_kernel()
    binaries = build_all_programs(
        iters_overrides={workload: _ITERS.get(workload, 1000)})

    record = {"tool": "bench_jit", "workload": workload,
              "repeats": repeats,
              "workload_iters": _ITERS.get(workload, 1000)}
    # One untimed translated run first: it both warms the in-process
    # template caches (what a campaign's steady state looks like) and
    # provides the bit-identity reference for the interpreter leg.
    _, warm = _one_run(kernel, binaries, workload, True)

    interp_s, interp = _best_of(repeats, kernel, binaries, workload,
                                False)
    if _fingerprint(interp) != _fingerprint(warm):
        raise RuntimeError(
            "translated run not bit-identical: %r vs %r"
            % (_fingerprint(warm), _fingerprint(interp)))
    xlate_s, xlate = _best_of(repeats, kernel, binaries, workload,
                              True)
    if _fingerprint(xlate) != _fingerprint(interp):
        raise RuntimeError(
            "translated run not bit-identical: %r vs %r"
            % (_fingerprint(xlate), _fingerprint(interp)))

    cycles = interp.cycles
    record["cycles"] = cycles
    record["instret"] = interp.instret
    record["interpreter_s"] = round(interp_s, 4)
    record["interpreter_cps"] = round(cycles / interp_s, 1)
    record["translated_s"] = round(xlate_s, 4)
    record["translated_cps"] = round(cycles / xlate_s, 1)
    record["speedup"] = round(interp_s / xlate_s, 3)
    for key, value in (xlate.translation or {}).items():
        record["cache_%s" % key] = value
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_jit.json")
    parser.add_argument("--workload", default="syscall")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="two repeats per engine (CI)")
    parser.add_argument("--gate", type=float, default=None,
                        help="fail if the speedup falls below this "
                             "bound")
    args = parser.parse_args(argv)

    repeats = 2 if args.smoke else args.repeats
    record = run_benchmarks(workload=args.workload, repeats=repeats)
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print("wrote %s" % args.output, file=sys.stderr)
    if args.gate is not None and record["speedup"] < args.gate:
        print("GATE FAILED: speedup %.3fx < %.2fx"
              % (record["speedup"], args.gate), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
