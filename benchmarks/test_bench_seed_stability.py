"""Stability: campaign outcome shares should not depend on the RNG seed.

Campaign A picks a random bit per instruction byte; if the reported
distributions were seed-sensitive, the reproduction's claims would be
fragile.  This bench runs the same slice under two seeds and checks the
crash/hang share difference is statistically unsurprising.
"""

from repro.analysis.confidence import proportion_diff_pvalue
from repro.analysis.stats import outcome_pie
from repro.injection.campaigns import plan_campaign, select_targets

SLICE = 150


def run_seeded(ctx, seed):
    harness = ctx.harness
    functions = select_targets(ctx.kernel, ctx.profile, "A")
    specs = plan_campaign(ctx.kernel, "A", functions, seed=seed,
                          byte_stride=11)[:SLICE]
    return [harness.run_spec(spec, grade=False) for spec in specs]


def test_bench_seed_stability(ctx, benchmark):
    first = run_seeded(ctx, seed=1)
    second = run_seeded(ctx, seed=2)

    def analyze():
        pies = []
        for results in (first, second):
            pie = outcome_pie(results)
            activated = pie.pop("activated", 0)
            crash = (pie.get("crash_dumped", 0)
                     + pie.get("crash_unknown", 0) + pie.get("hang", 0))
            pies.append((crash, activated))
        (crash_a, act_a), (crash_b, act_b) = pies
        p = proportion_diff_pvalue(crash_a, act_a, crash_b, act_b)
        return crash_a, act_a, crash_b, act_b, p

    crash_a, act_a, crash_b, act_b, p = benchmark.pedantic(
        analyze, rounds=1, iterations=1)
    print("\nSeed stability (crash+hang share of activated):")
    print("  seed 1: %d/%d = %.1f%%"
          % (crash_a, act_a, 100 * crash_a / max(1, act_a)))
    print("  seed 2: %d/%d = %.1f%%"
          % (crash_b, act_b, 100 * crash_b / max(1, act_b)))
    print("  two-proportion p-value: %.3f" % p)
    # would only fail on a real seed-dependence pathology
    assert p > 0.001
