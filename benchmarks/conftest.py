"""Benchmark fixtures.

The campaign data is produced once per session (``REPRO_BENCH_SCALE``
selects the preset, default "tiny"); each benchmark then regenerates its
paper exhibit from that shared state and prints the rows it reproduces.
"""

import os

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    scale = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    context = ExperimentContext(scale=scale, results_dir=cache_dir,
                                verbose=bool(os.environ.get(
                                    "REPRO_BENCH_VERBOSE")))
    return context


@pytest.fixture(scope="session")
def campaigns(ctx):
    """Force all three campaigns to run before timing starts."""
    return ctx.all_campaigns()
