"""Simulator-throughput benchmarks (the substrate's own performance)."""

import pytest

from repro.machine.machine import Machine, build_standard_disk


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
def test_bench_kernel_build(benchmark):
    from repro.kernel.build import build_kernel
    image = benchmark(build_kernel)
    assert len(image.code) > 10_000


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
def test_bench_boot_to_shutdown(ctx, benchmark):
    disk = build_standard_disk(ctx.binaries, None)

    def boot():
        machine = Machine(ctx.kernel, disk)
        return machine.run(max_cycles=10_000_000)

    result = benchmark(boot)
    assert result.status == "shutdown"


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
def test_bench_syscall_workload(ctx, benchmark):
    disk = build_standard_disk(ctx.binaries, "syscall")

    def run():
        machine = Machine(ctx.kernel, disk)
        return machine.run(max_cycles=60_000_000)

    result = benchmark(run)
    assert result.exit_code == 0


@pytest.mark.benchmark(min_rounds=3, max_time=1.0)
def test_bench_one_injection_experiment(ctx, benchmark):
    from repro.injection.campaigns import plan_campaign, select_targets
    harness = ctx.harness
    functions = select_targets(ctx.kernel, ctx.profile, "C")
    spec = plan_campaign(ctx.kernel, "C", functions)[0]
    harness.golden(harness.workload_priority(spec.function)[0])

    result = benchmark(harness.run_spec, spec)
    assert result.outcome is not None
