#!/usr/bin/env python3
"""Measure fabric shard scaling + snapshot reuse; emit BENCH_fabric.json.

Runs the same seeded campaign slice three ways and reports wall time
and kernel-boot counts:

* **serial** — the plain one-process engine (baseline);
* **fabric cold** — N shards on a worker pool with an empty
  boot-snapshot store (boots once per kernel/workload pair, freezes
  the post-boot state);
* **fabric warm** — the same N shards over the now-populated store
  (**zero** boots: every shard thaws the frozen state).

The acceptance criterion is in the boot counters: ``boots_warm`` must
be 0 and ``boots_cold`` must equal the number of distinct
kernel/workload pairs (+1 for the crash-overhead calibration boot on
the serial baseline), i.e. boot cost is paid once per pair, not once
per shard.  All three runs must serialize bit-identically; the
benchmark refuses to report timings for non-identical results.

Run from the repo root::

    PYTHONPATH=src python3 benchmarks/bench_fabric.py [--smoke]
        [--shards 3] [--output PATH]
"""

import argparse
import json
import os
import sys
import tempfile
import time


def run_benchmarks(campaign="A", seed=2003, stride=40, max_specs=36,
                   shards=3, pool=2):
    from repro.injection.fabric import (
        FabricConfig,
        FabricCoordinator,
        SnapshotStore,
    )
    from repro.injection.runner import InjectionHarness
    from repro.kernel.build import build_kernel
    from repro.profiling.sampler import profile_kernel
    from repro.userland.build import build_all_programs
    from repro.userland.programs import WORKLOADS

    kernel = build_kernel()
    binaries = build_all_programs()
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    workdir = tempfile.mkdtemp(prefix="bench_fabric_")
    store = SnapshotStore(os.path.join(workdir, "snapshots"))

    record = {"tool": "bench_fabric", "campaign": campaign,
              "seed": seed, "byte_stride": stride,
              "max_specs": max_specs, "shards": shards, "pool": pool}

    serial_harness = InjectionHarness(kernel, binaries, profile)
    start = time.perf_counter()
    serial = serial_harness.run_campaign(campaign, seed=seed,
                                         byte_stride=stride,
                                         max_specs=max_specs)
    record["serial_s"] = round(time.perf_counter() - start, 3)
    record["n_specs"] = len(serial.results)
    record["boots_serial"] = serial_harness.boots
    baseline = [r.to_dict() for r in serial.results]
    workloads = {r.workload for r in serial.results if r.workload}
    record["workloads"] = sorted(workloads)

    def fabric_run(label, harness):
        coordinator = FabricCoordinator(harness,
                                        FabricConfig(pool=pool))
        begin = time.perf_counter()
        results = coordinator.run_campaign(
            campaign, seed=seed, byte_stride=stride,
            max_specs=max_specs, shard_count=shards,
            workdir=os.path.join(workdir, label))
        record["%s_s" % label] = round(time.perf_counter() - begin, 3)
        record["boots_%s" % label] = harness.boots
        if [r.to_dict() for r in results] != baseline:
            raise RuntimeError(
                "%s fabric results are not bit-identical to serial; "
                "refusing to report timings" % label)

    fabric_run("cold", InjectionHarness(kernel, binaries, profile,
                                        snapshot_store=store))
    record["store_entries"] = store.misses
    fabric_run("warm", InjectionHarness(kernel, binaries, profile,
                                        snapshot_store=store))
    record["store_hits"] = store.hits
    record["speedup_warm_vs_serial"] = round(
        record["serial_s"] / record["warm_s"], 3)
    record["boot_cost_eliminated"] = record["boots_warm"] == 0
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_fabric.json")
    parser.add_argument("--campaign", default="A")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--stride", type=int, default=40)
    parser.add_argument("--max-specs", type=int, default=36)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--pool", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller slice (CI)")
    args = parser.parse_args(argv)

    max_specs = 12 if args.smoke else args.max_specs
    record = run_benchmarks(campaign=args.campaign, seed=args.seed,
                            stride=args.stride, max_specs=max_specs,
                            shards=args.shards, pool=args.pool)
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print("wrote %s" % args.output, file=sys.stderr)
    if not record["boot_cost_eliminated"]:
        print("GATE FAILED: warm-store fabric run booted %d times "
              "(want 0)" % record["boots_warm"], file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
