"""Benchmark regenerating Figure 4 (activation/failure distribution)."""

from repro.experiments import fig4_outcomes


def test_bench_fig4_outcome_distribution(ctx, campaigns, benchmark):
    text = benchmark(fig4_outcomes.run, ctx)
    print("\n" + text)
    for campaign in ("A", "B", "C"):
        assert "Figure 4 (%s" % campaign in text
    assert "Not Manifested" in text
