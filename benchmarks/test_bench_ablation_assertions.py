"""Ablation: how much of campaign C's failure profile do the kernel's
BUG() assertions explain?

DESIGN.md calls out assertion density as the mechanism behind the
paper's campaign-C invalid-opcode dominance (Figure 6) and its
§7.4 suggestion that well-placed assertions catch propagating errors.
This bench builds a second kernel with every BUG() compiled out and
reruns a slice of campaign C against both kernels.
"""

import pytest

from repro.cc.compiler import compile_unit
from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.runner import InjectionHarness
from repro.isa.assembler import assemble
from repro.kernel import build as kbuild
from repro.kernel.build import KernelImage
from repro.kernel.layout import PAGE_SIZE, KernelLayout
from repro.analysis.stats import crash_cause_distribution, outcome_pie

SLICE = 120


def build_kernel_without_assertions():
    """Build the kernel with BUG() bodies compiled to no-ops."""
    layout = KernelLayout()
    sources = [("include/generated.h", "lib", layout.minc_header()),
               ("include/defs.h", "lib",
                kbuild.defs_src.SOURCE)]
    for unit_name, subsystem, module in kbuild.KERNEL_UNITS:
        text = module.SOURCE.replace("BUG();", ";")
        sources.append((unit_name, subsystem, text))
    unit = compile_unit(sources, externs=kbuild.ASM_SYMBOLS)
    stubs = kbuild.arch_src.ASM_STUBS % {
        "boot_stack_top": layout.BOOT_STACK_TOP,
        "user_cs": layout.USER_CS,
        "user_ds": layout.USER_DS,
    }
    full_asm = (stubs + "\n" + unit.text
                + "\n.align %d\n" % PAGE_SIZE
                + ".global __data_start\n" + unit.data
                + "\n.align 4\n.global __kernel_end\n.long 0\n")
    program = assemble(full_asm, base=layout.KERNEL_TEXT)
    return KernelImage(code=program.code, base=layout.KERNEL_TEXT,
                       symbols=program.symbols,
                       functions=program.functions, layout=layout,
                       source_lines=kbuild.kernel_source_inventory())


def run_slice(kernel, binaries, profile):
    harness = InjectionHarness(kernel, binaries, profile)
    functions = select_targets(kernel, profile, "C")
    specs = plan_campaign(kernel, "C", functions)[:SLICE]
    return [harness.run_spec(spec, grade=False) for spec in specs]


@pytest.fixture(scope="module")
def ablation_results(ctx):
    from repro.profiling.sampler import profile_kernel
    from repro.userland.programs import WORKLOADS
    baseline = run_slice(ctx.kernel, ctx.binaries, ctx.profile)
    stripped_kernel = build_kernel_without_assertions()
    stripped_profile = profile_kernel(stripped_kernel, ctx.binaries,
                                      WORKLOADS)
    stripped = run_slice(stripped_kernel, ctx.binaries, stripped_profile)
    return baseline, stripped


def _invalid_opcode_share(results):
    causes = crash_cause_distribution(results)
    total = sum(causes.values())
    if not total:
        return 0.0
    return causes.get("invalid_opcode", 0) / total


def test_bench_assertion_ablation(ablation_results, benchmark):
    baseline, stripped = ablation_results

    def analyze():
        return (_invalid_opcode_share(baseline),
                _invalid_opcode_share(stripped),
                outcome_pie(baseline), outcome_pie(stripped))

    with_share, without_share, with_pie, without_pie = benchmark(analyze)
    print("\nAblation: campaign C invalid-opcode share of dumped crashes")
    print("  with BUG() assertions:    %5.1f%%" % (100 * with_share))
    print("  without BUG() assertions: %5.1f%%" % (100 * without_share))
    print("  outcomes with:    %s" % dict(with_pie))
    print("  outcomes without: %s" % dict(without_pie))
    # The paper's mechanism: assertions convert silent corruption into
    # immediate invalid-opcode crashes.
    assert with_share >= without_share
