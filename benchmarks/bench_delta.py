#!/usr/bin/env python3
"""Measure delta-campaign reuse on a one-function edit; emit BENCH_delta.json.

Runs the same seeded campaign slice three ways around a minimal,
size-preserving kernel source edit (one immediate in ``sys_stat`` —
a syscall no shipped workload ever issues):

* **base** — the campaign on the unedited kernel, journaled: the
  carry source;
* **scratch** — the full campaign on the rebuilt kernel (the cost a
  naive re-run pays);
* **delta** — the same campaign planned against the base journal:
  records the static differ proves unchanged are carried forward,
  only impacted sites boot kernels.

The acceptance criteria: the delta run must serialize
**bit-identically** to the from-scratch run (the benchmark refuses to
report timings otherwise), the re-run fraction must stay at or below
``--max-fraction`` (default 0.5), and the measured wall-clock speedup
of delta over scratch must be >= 1.

Run from the repo root::

    PYTHONPATH=src python3 benchmarks/bench_delta.py [--smoke]
        [--output PATH]
"""

import argparse
import json
import os
import sys
import tempfile
import time

#: The one-function edit: bump an immediate inside ``sys_stat``
#: (imm8 both before and after, so no function moves and the data
#: section is untouched).  ``sys_stat`` is reachable by no shipped
#: workload, so the execution-cone rules carry nearly everything.
SYS_STAT_EDIT = (
    ("fs/vfs+ext2.c",
     "put_user(buf_user + 8, nblocks);",
     "put_user(buf_user + 9, nblocks);"),
)


def run_benchmarks(campaign="C", seed=2003, stride=8, max_specs=None):
    from repro.injection.runner import InjectionHarness
    from repro.kernel.build import build_kernel
    from repro.profiling.sampler import profile_kernel
    from repro.userland.build import build_all_programs
    from repro.userland.programs import WORKLOADS

    kernel = build_kernel()
    binaries = build_all_programs()
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    workdir = tempfile.mkdtemp(prefix="bench_delta_")
    base_journal = os.path.join(workdir, "base.journal.jsonl")

    record = {"tool": "bench_delta", "campaign": campaign,
              "seed": seed, "byte_stride": stride,
              "max_specs": max_specs,
              "edit": [list(edit) for edit in SYS_STAT_EDIT]}

    base_harness = InjectionHarness(kernel, binaries, profile)
    start = time.perf_counter()
    base = base_harness.run_campaign(campaign, seed=seed,
                                     byte_stride=stride,
                                     max_specs=max_specs,
                                     journal_path=base_journal)
    record["base_s"] = round(time.perf_counter() - start, 3)
    record["n_specs"] = len(base.results)

    new_kernel = build_kernel(source_edits=SYS_STAT_EDIT)

    scratch_harness = InjectionHarness(new_kernel, binaries, profile)
    start = time.perf_counter()
    scratch = scratch_harness.run_campaign(campaign, seed=seed,
                                           byte_stride=stride,
                                           max_specs=max_specs)
    record["scratch_s"] = round(time.perf_counter() - start, 3)
    record["boots_scratch"] = scratch_harness.boots
    baseline = [r.to_dict() for r in scratch.results]

    # Fresh harness: the delta run pays its own golden boots, so the
    # speedup below is end-to-end, not warm-cache flattery.
    delta_harness = InjectionHarness(new_kernel, binaries, profile)
    start = time.perf_counter()
    delta = delta_harness.run_campaign(
        campaign, seed=seed, byte_stride=stride, max_specs=max_specs,
        delta_from=base_journal, delta_base_kernel=kernel)
    record["delta_s"] = round(time.perf_counter() - start, 3)
    record["boots_delta"] = delta_harness.boots

    if [r.to_dict() for r in delta.results] != baseline:
        raise RuntimeError(
            "delta results are not bit-identical to from-scratch; "
            "refusing to report timings")

    plan = delta.meta["delta"]
    record["changed"] = plan["diff"]["changed"]
    record["carried"] = plan["carried"]
    record["live"] = plan["live"]
    record["rerun_fraction"] = plan["rerun_fraction"]
    record["live_reasons"] = plan["reasons"]
    record["speedup_delta_vs_scratch"] = round(
        record["scratch_s"] / record["delta_s"], 3)
    record["bit_identical"] = True
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_delta.json")
    parser.add_argument("--campaign", default="C")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--stride", type=int, default=8)
    parser.add_argument("--max-specs", type=int, default=None)
    parser.add_argument("--max-fraction", type=float, default=0.5,
                        help="re-run fraction floor enforced on exit")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller slice (CI)")
    args = parser.parse_args(argv)

    max_specs = 36 if args.smoke else args.max_specs
    record = run_benchmarks(campaign=args.campaign, seed=args.seed,
                            stride=args.stride, max_specs=max_specs)
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print("wrote %s" % args.output, file=sys.stderr)
    status = 0
    if record["rerun_fraction"] > args.max_fraction:
        print("GATE FAILED: re-run fraction %.4f exceeds %.2f"
              % (record["rerun_fraction"], args.max_fraction),
              file=sys.stderr)
        status = 1
    if record["speedup_delta_vs_scratch"] < 1.0:
        print("GATE FAILED: delta run slower than from-scratch "
              "(speedup %.3f)" % record["speedup_delta_vs_scratch"],
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
