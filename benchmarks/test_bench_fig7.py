"""Benchmark regenerating Figure 7 (crash latency histograms)."""

from repro.experiments import fig7_latency


def test_bench_fig7_crash_latency(ctx, campaigns, benchmark):
    text = benchmark(fig7_latency.run, ctx)
    print("\n" + text)
    assert "Figure 7" in text
    assert "0-10" in text
