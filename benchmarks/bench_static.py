#!/usr/bin/env python3
"""Time the whole-image static-analysis stack; emit BENCH_static.json.

Measures, against the freshly built kernel image:

* CFG construction for every kernel function;
* dataflow def/use extraction over every instruction;
* stack-depth fixpoints for every function;
* symbolic propagation summaries for every function (the FastFlip-style
  cache the site solver composes against);
* per-site verdict throughput over a campaign-A-like site sample.

Run from the repo root::

    PYTHONPATH=src python3 benchmarks/bench_static.py [--output PATH]

The JSON is a flat record (seconds and counts) so successive runs can
be diffed or charted as the analysis grows.
"""

import argparse
import json
import sys
import time


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def run_benchmarks():
    from repro.injection.campaigns import plan_campaign, select_targets
    from repro.kernel.build import build_kernel
    from repro.profiling.sampler import profile_kernel
    from repro.staticanalysis.cfg import build_cfg
    from repro.staticanalysis.dataflow import instr_defs_uses
    from repro.staticanalysis.propagation import PropagationAnalyzer
    from repro.staticanalysis.stackdepth import analyze_stack
    from repro.userland.build import build_all_programs
    from repro.userland.programs import WORKLOADS

    record = {"tool": "bench_static", "unit": "seconds"}

    build_s, kernel = _timed(build_kernel)
    record["kernel_build_s"] = round(build_s, 4)
    record["functions"] = len(kernel.functions)
    record["code_bytes"] = len(kernel.code)

    cfg_s, cfgs = _timed(lambda: {
        f.name: build_cfg(kernel, f) for f in kernel.functions})
    record["cfg_all_functions_s"] = round(cfg_s, 4)
    record["basic_blocks"] = sum(len(c.blocks) for c in cfgs.values())

    instrs = [ins for cfg in cfgs.values()
              for block in cfg.blocks.values()
              for ins in block.instrs]
    record["instructions"] = len(instrs)
    dataflow_s, _ = _timed(
        lambda: [instr_defs_uses(ins) for ins in instrs])
    record["dataflow_all_instrs_s"] = round(dataflow_s, 4)

    def all_stacks():
        done = 0
        for cfg in cfgs.values():
            try:
                analyze_stack(cfg)
            except Exception:
                continue
            done += 1
        return done

    stack_s, stack_count = _timed(all_stacks)
    record["stackdepth_all_functions_s"] = round(stack_s, 4)
    record["stackdepth_functions"] = stack_count

    analyzer = PropagationAnalyzer(kernel)
    summaries_s, _ = _timed(lambda: [
        analyzer.summary(f.name) for f in kernel.functions])
    record["propagation_summaries_s"] = round(summaries_s, 4)

    profile = profile_kernel(kernel, build_all_programs(), WORKLOADS)
    specs = []
    for key in ("A", "B"):
        functions = select_targets(kernel, profile, key)
        specs.extend(plan_campaign(kernel, key, functions)[:300])
    verdicts_s, verdicts = _timed(lambda: [
        analyzer.analyze_site(s.function, s.instr_addr, s.byte_offset,
                              s.bit) for s in specs])
    record["site_verdicts"] = len(verdicts)
    record["site_verdicts_s"] = round(verdicts_s, 4)
    if verdicts_s > 0:
        record["site_verdicts_per_s"] = round(
            len(verdicts) / verdicts_s, 1)
    record["sites_predicting_crash"] = sum(
        1 for v in verdicts if v.predicts_crash)
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_static.json")
    args = parser.parse_args(argv)

    record = run_benchmarks()
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    print("wrote %s" % args.output, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
