"""Benchmark regenerating Figure 6 (crash causes)."""

from repro.experiments import fig6_crash_causes


def test_bench_fig6_crash_causes(ctx, campaigns, benchmark):
    text = benchmark(fig6_crash_causes.run, ctx)
    print("\n" + text)
    assert "Figure 6" in text
    assert "dominant causes" in text
