"""Benchmark regenerating Figure 8 (error propagation graphs)."""

from repro.experiments import fig8_propagation


def test_bench_fig8_propagation(ctx, campaigns, benchmark):
    text = benchmark(fig8_propagation.run, ctx)
    print("\n" + text)
    assert "Figure 8" in text
    assert "propagation rate" in text
