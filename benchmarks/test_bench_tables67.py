"""Benchmarks regenerating the case-study tables (6 and 7)."""

from repro.experiments import table6_cases, table7_cases


def test_bench_table6_not_manifested_cases(ctx, campaigns, benchmark):
    text = benchmark(table6_cases.run, ctx)
    print("\n" + text)
    assert "Table 6" in text


def test_bench_table7_crash_cases(ctx, campaigns, benchmark):
    text = benchmark(table7_cases.run, ctx)
    print("\n" + text)
    assert "Table 7" in text
