"""Benchmarks regenerating Figure 1 and Table 1."""

from repro.experiments import fig1_subsystem_sizes, table1_profile


def test_bench_fig1_subsystem_sizes(benchmark):
    text = benchmark(fig1_subsystem_sizes.run)
    print("\n" + text)
    assert "fs" in text and "total" in text


def test_bench_table1_function_distribution(ctx, benchmark):
    ctx.profile  # build outside the timed region
    text = benchmark(table1_profile.run, ctx)
    print("\n" + text)
    assert "Table 1" in text
    assert "Total" in text
