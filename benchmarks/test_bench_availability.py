"""Benchmark for the availability model and sensitivity exhibits."""

from repro.experiments import availability_model, sensitivity


def test_bench_availability_model(benchmark):
    text = benchmark(availability_model.run)
    print("\n" + text)
    assert "most_severe" in text


def test_bench_function_sensitivity(ctx, campaigns, benchmark):
    text = benchmark(sensitivity.run, ctx)
    print("\n" + text)
    assert "arch" in text
