"""Ablation: workload size vs error-activation rate.

The paper's §5.2 'Location' attribute argues that profiling-driven
target selection achieves "a sufficiently high error activation rate".
This bench quantifies the other half of that trade: how activation
scales with how long the driving benchmark runs (more iterations =>
more of each function's paths execute).
"""

from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.runner import InjectionHarness
from repro.userland.build import build_program


def activation_rate(harness, kernel, profile):
    functions = select_targets(kernel, profile, "A")
    specs = plan_campaign(kernel, "A", functions, byte_stride=7)
    covered = 0
    for spec in specs:
        if harness.assign_workload(spec):
            covered += 1
    return covered / len(specs), len(specs)


def test_bench_activation_vs_workload_size(ctx, benchmark):
    kernel = ctx.kernel
    profile = ctx.profile
    small = ctx.binaries
    # Double every workload's iteration count.
    big = dict(small)
    for name in ("syscall", "pipe", "context1", "spawn", "fstime",
                 "dhry", "hanoi", "looper"):
        default = small[name]
        big[name] = build_program(name)  # rebuilt for isolation
    for name in ("syscall", "pipe", "dhry"):
        big[name] = build_program(name, iters=60)

    harness_small = InjectionHarness(kernel, small, profile)
    harness_big = InjectionHarness(kernel, big, profile)

    def measure():
        rate_small, n = activation_rate(harness_small, kernel, profile)
        rate_big, _ = activation_rate(harness_big, kernel, profile)
        return rate_small, rate_big, n

    rate_small, rate_big, n = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)
    print("\nAblation: activation rate vs workload size (%d specs)" % n)
    print("  default iterations:  %5.1f%%" % (100 * rate_small))
    print("  enlarged iterations: %5.1f%%" % (100 * rate_big))
    # more workload activity can only widen coverage
    assert rate_big >= rate_small - 0.01
