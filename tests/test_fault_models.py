"""Pluggable fault models: planning, delivery, schema, degradation."""

import json

import pytest

from repro.injection.campaigns import InjectionSpec
from repro.injection.faultmodels import (
    CAMPAIGN_KEYS,
    FAULT_KINDS,
    describe_fault,
    plan_fault_model_campaign,
    resolve_model,
    run_fault_model_campaign,
)
from repro.injection.outcomes import (
    HARNESS_ERROR,
    NOT_ACTIVATED,
    NOT_MANIFESTED,
)


def _base_spec(**kwargs):
    fields = dict(campaign="A", function="sys_getpid",
                  subsystem="kernel", instr_addr=0x100000, instr_len=2,
                  byte_offset=0, bit=3, mnemonic="mov")
    fields.update(kwargs)
    return InjectionSpec(**fields)


class TestSpecSchema:
    def test_fault_model_round_trips(self):
        fault = {"kind": "mem", "v": 1, "region": "stack",
                 "offset": 8, "bits": [0, 5]}
        spec = _base_spec(fault_model=fault)
        clone = InjectionSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone.fault_model == fault

    def test_pre_framework_dict_loads_with_none_model(self):
        data = _base_spec().to_dict()
        del data["fault_model"]          # a v1 journal has no such key
        spec = InjectionSpec.from_dict(data)
        assert spec.fault_model is None

    def test_unknown_keys_are_tolerated(self):
        data = _base_spec().to_dict()
        data["some_future_field"] = {"x": 1}
        spec = InjectionSpec.from_dict(data)
        assert spec.function == "sys_getpid"

    def test_unknown_kind_rejected(self):
        spec = _base_spec(fault_model={"kind": "quantum", "v": 1})
        with pytest.raises(ValueError):
            resolve_model(spec)

    def test_newer_version_rejected(self):
        spec = _base_spec(fault_model={"kind": "mem", "v": 99,
                                       "region": "stack", "offset": 0,
                                       "bits": [0]})
        with pytest.raises(ValueError):
            resolve_model(spec)

    def test_default_spec_has_no_model(self):
        assert resolve_model(_base_spec()) is None
        assert describe_fault(_base_spec()) is None

    def test_describe_names_model_and_target(self):
        spec = _base_spec(fault_model={"kind": "reg_trap", "v": 1,
                                       "reg": 2, "bit": 17})
        assert describe_fault(spec) == \
            "FAULT: reg flip edx bit 17 @ trap entry"

    def test_bad_model_is_contained_as_harness_error(self, harness):
        from repro.injection.engine import run_spec_contained
        spec = _base_spec(fault_model={"kind": "quantum", "v": 1})
        result = run_spec_contained(harness, spec, False, 2003)
        assert result.outcome == HARNESS_ERROR
        assert "quantum" in result.repro["traceback"]


class TestPlanning:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_plan_is_deterministic(self, kernel, profile, kind):
        first = plan_fault_model_campaign(kernel, profile, kind)
        second = plan_fault_model_campaign(kernel, profile, kind)
        assert [s.to_dict() for s in first] == \
            [s.to_dict() for s in second]
        assert first, "empty plan for %s" % kind

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_specs_carry_versioned_model(self, kernel, profile, kind):
        for spec in plan_fault_model_campaign(kernel, profile, kind,
                                              max_specs=10):
            assert spec.campaign == CAMPAIGN_KEYS[kind]
            assert spec.fault_model["kind"] == kind
            assert spec.fault_model["v"] == 1
            assert resolve_model(spec) is not None

    def test_unknown_kind_has_no_planner(self, kernel, profile):
        with pytest.raises(ValueError):
            plan_fault_model_campaign(kernel, profile, "quantum")


class TestEndToEnd:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_model_runs_and_activates(self, harness, kind):
        results = run_fault_model_campaign(harness, kind, max_specs=4,
                                           grade=False)
        assert len(results) == 4
        assert results.meta["fault_model"] == kind
        activated = [r for r in results.results if r.activated]
        assert activated, "%s never delivered a fault" % kind
        for result in results.results:
            assert result.fault_model == kind
            assert result.fault_target
            if not result.activated:
                assert result.outcome == NOT_ACTIVATED

    def test_results_journal_round_trip(self, harness):
        results = run_fault_model_campaign(harness, "disk", max_specs=3,
                                           grade=False)
        for result in results.results:
            data = json.loads(json.dumps(result.to_dict()))
            from repro.injection.outcomes import InjectionResult
            clone = InjectionResult.from_dict(data)
            assert clone.fault_model == result.fault_model
            assert clone.fault_target == result.fault_target


class TestGracefulDegradation:
    """The disk-retry ablation: same plan, fail-stop vs retrying driver."""

    @pytest.fixture(scope="class")
    def failstop(self, harness):
        return run_fault_model_campaign(harness, "disk", grade=False)

    @pytest.fixture(scope="class")
    def retried(self, retry_harness):
        return run_fault_model_campaign(retry_harness, "disk",
                                        grade=False)

    def test_plans_are_identical(self, failstop, retried):
        assert [r.mnemonic for r in failstop.results] == \
            [r.mnemonic for r in retried.results]

    def test_transient_faults_are_masked_by_retry(self, failstop,
                                                  retried):
        masked = 0
        for before, after in zip(failstop.results, retried.results):
            if before.mnemonic != "disk:transient":
                continue
            assert after.activated     # the fault still fired...
            if before.outcome != NOT_MANIFESTED \
                    and after.outcome == NOT_MANIFESTED:
                masked += 1            # ...but the driver absorbed it
        assert masked > 0

    def test_retry_never_makes_an_outcome_worse(self, failstop,
                                                retried):
        bad_before = sum(1 for r in failstop.results
                         if r.outcome not in (NOT_ACTIVATED,
                                              NOT_MANIFESTED))
        bad_after = sum(1 for r in retried.results
                        if r.outcome not in (NOT_ACTIVATED,
                                             NOT_MANIFESTED))
        assert bad_after < bad_before
