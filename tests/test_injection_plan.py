"""Campaign planning invariants (Table 4 semantics)."""

import pytest

from repro.injection.campaigns import (
    CAMPAIGNS,
    TARGET_SUBSYSTEMS,
    plan_campaign,
    select_targets,
)
from repro.isa.conditions import cc_invert
from repro.isa.decoder import decode_all


@pytest.fixture(scope="module")
def targets(kernel, profile):
    return {key: select_targets(kernel, profile, key)
            for key in ("A", "B", "C")}


class TestSelectTargets:
    def test_only_paper_subsystems(self, targets):
        for functions in targets.values():
            assert all(f.subsystem in TARGET_SUBSYSTEMS
                       for f in functions)

    def test_campaign_function_counts_grow(self, targets):
        # The paper injected 51 / 81 / 176 functions across A/B/C.
        assert len(targets["A"]) < len(targets["B"]) <= len(targets["C"])

    def test_core_functions_in_every_campaign(self, kernel, profile,
                                              targets):
        core = {f.name for f in profile.top_functions()
                if (kernel.functions_in("arch")
                    or True)}  # all core names
        core = {f.name for f in profile.top_functions()}
        for functions in targets.values():
            names = {f.name for f in functions}
            expected = {name for name in core
                        if kernel.find_function(kernel.symbols[name])
                        and kernel.find_function(
                            kernel.symbols[name]).subsystem
                        in TARGET_SUBSYSTEMS}
            assert expected <= names


class TestPlanCampaign:
    def test_campaign_a_excludes_conditional_branches(self, kernel,
                                                      targets):
        specs = plan_campaign(kernel, "A", targets["A"])
        assert specs
        assert all(s.mnemonic not in ("jcc", "loop", "loope", "loopne",
                                      "jcxz") for s in specs)

    def test_campaign_b_targets_only_conditional_branches(self, kernel,
                                                          targets):
        specs = plan_campaign(kernel, "B", targets["B"])
        assert specs
        assert all(s.mnemonic in ("jcc", "loop", "loope", "loopne",
                                  "jcxz") for s in specs)

    def test_campaign_a_covers_every_instruction_byte(self, kernel,
                                                      targets):
        functions = targets["A"][:3]
        specs = plan_campaign(kernel, "A", functions)
        for info in functions:
            code = kernel.code[info.start - kernel.base:
                               info.end - kernel.base]
            expected = sum(
                i.length for i in decode_all(code, base=info.start)
                if i.op != "(bad)" and i.op not in (
                    "jcc", "loop", "loope", "loopne", "jcxz"))
            got = sum(1 for s in specs if s.function == info.name)
            assert got == expected

    def test_campaign_c_flips_exactly_the_condition_bit(self, kernel,
                                                        targets):
        specs = plan_campaign(kernel, "C", targets["C"])
        assert specs
        for spec in specs:
            assert spec.mnemonic == "jcc"
            offset = spec.instr_addr - kernel.base
            raw = kernel.code[offset:offset + spec.instr_len]
            flipped = bytearray(raw)
            flipped[spec.byte_offset] ^= 1 << spec.bit
            before = decode_all(bytes(raw), base=spec.instr_addr)[0]
            after = decode_all(bytes(flipped), base=spec.instr_addr)[0]
            assert after.op == "jcc"
            assert after.cc == cc_invert(before.cc)
            assert after.rel == before.rel

    def test_plan_is_deterministic(self, kernel, targets):
        first = plan_campaign(kernel, "B", targets["B"], seed=7)
        second = plan_campaign(kernel, "B", targets["B"], seed=7)
        assert [(s.instr_addr, s.byte_offset, s.bit) for s in first] == \
            [(s.instr_addr, s.byte_offset, s.bit) for s in second]

    def test_different_seed_changes_bits(self, kernel, targets):
        first = plan_campaign(kernel, "A", targets["A"][:4], seed=1)
        second = plan_campaign(kernel, "A", targets["A"][:4], seed=2)
        assert [s.bit for s in first] != [s.bit for s in second]

    def test_byte_stride_thins_plan(self, kernel, targets):
        full = plan_campaign(kernel, "A", targets["A"])
        thin = plan_campaign(kernel, "A", targets["A"], byte_stride=4)
        assert len(full) // 5 < len(thin) < len(full) // 3

    def test_max_per_function(self, kernel, targets):
        specs = plan_campaign(kernel, "A", targets["A"],
                              max_per_function=5)
        from collections import Counter
        counts = Counter(s.function for s in specs)
        assert max(counts.values()) <= 5

    def test_campaign_defs_table(self):
        assert CAMPAIGNS["A"].title == "Any Random Error"
        assert CAMPAIGNS["B"].branch_targets is True
        assert CAMPAIGNS["C"].condition_bit is True
