"""Golden-vs-injected trace diffing on synthetic streams."""

from repro.tracing.diff import (
    DIV_EVENT,
    DIV_EXTRA,
    DIV_TRUNCATED,
    diff_traces,
)
from repro.tracing.ring import DEFAULT_CHANNELS, EV_BRANCH, EV_TRAP, \
    Trace


def br(cycle, instret, src, dst):
    return (EV_BRANCH, cycle, instret, src, dst)


def tr(cycle, instret, eip, vector):
    return (EV_TRAP, cycle, instret, eip, vector, 0, 0)


def trace(events, dropped=0, capacity=None):
    return Trace(DEFAULT_CHANNELS, capacity, events,
                 len(events) + dropped, dropped)


GOLDEN = [
    br(100, 10, 0xC0100000, 0xC0100050),
    br(120, 15, 0xC0100060, 0xC0100100),
    br(150, 22, 0xC0100110, 0xC0100200),
    br(180, 30, 0xC0100210, 0xC0100300),
]


class TestNoDivergence:
    def test_identical_streams(self):
        diff = diff_traces(trace(GOLDEN), trace(list(GOLDEN)))
        assert not diff.diverged
        assert diff.compared_events == len(GOLDEN)
        assert diff.complete

    def test_empty_streams(self):
        diff = diff_traces(trace([]), trace([]))
        assert not diff.diverged


class TestEventDivergence:
    def test_first_differing_event_is_found(self):
        injected = list(GOLDEN)
        injected[2] = br(150, 22, 0xC0100110, 0xC0999999)  # went wild
        diff = diff_traces(trace(GOLDEN), trace(injected),
                           activation_cycle=130,
                           activation_instret=18)
        assert diff.diverged
        assert diff.divergence_kind == DIV_EVENT
        assert diff.divergence_cycle == 150
        assert diff.divergence_eip == 0xC0100110
        assert diff.compared_events == 2
        assert diff.flip_to_divergence_cycles == 20
        assert diff.flip_to_divergence_instrs == 4

    def test_crash_cycle_gives_trap_distance(self):
        injected = GOLDEN[:2] + [tr(160, 24, 0xC0100110, 14)]
        diff = diff_traces(trace(GOLDEN), trace(injected),
                           activation_cycle=130, crash_cycle=400)
        assert diff.divergence_kind == DIV_EVENT
        assert diff.divergence_cycle == 160
        assert diff.divergence_to_trap_cycles == 240
        assert diff.flip_to_trap_cycles == 270

    def test_subsystem_spread_orders_first_touch(self):
        domains = {0xC0100110: "fs", 0xC0999999: "mm",
                   0xC0100210: "kernel", 0xC0100300: "fs"}
        injected = GOLDEN[:2] + [
            br(150, 22, 0xC0100110, 0xC0999999),
            br(180, 30, 0xC0100210, 0xC0100300),
        ]
        diff = diff_traces(trace(GOLDEN), trace(injected),
                           subsystem_of=lambda a: domains.get(a, "?"))
        assert diff.subsystems == ("fs", "mm", "kernel")


class TestLengthDivergence:
    def test_extra_injected_events(self):
        injected = list(GOLDEN) + [br(300, 50, 0xC0100400, 0xC0100500)]
        diff = diff_traces(trace(GOLDEN), trace(injected))
        assert diff.divergence_kind == DIV_EXTRA
        assert diff.divergence_cycle == 300

    def test_truncated_injected_stream(self):
        diff = diff_traces(trace(GOLDEN), trace(GOLDEN[:2]),
                           activation_cycle=130, crash_cycle=500)
        assert diff.divergence_kind == DIV_TRUNCATED
        # no further event to stamp with: the crash is the divergence
        assert diff.divergence_cycle == 500
        assert diff.divergence_eip is None
        assert diff.flip_to_divergence_cycles == 370

    def test_truncated_without_crash_uses_last_stamp(self):
        diff = diff_traces(trace(GOLDEN), trace(GOLDEN[:2]))
        assert diff.divergence_kind == DIV_TRUNCATED
        assert diff.divergence_cycle == GOLDEN[1][1]


class TestWrappedRings:
    def test_wrapped_rings_align_by_stamp_and_flag_incomplete(self):
        # The injected ring lost its two oldest events to a wrap; the
        # diff must align at the injected window's start, still find
        # the divergence, and mark the result incomplete.
        injected = GOLDEN[2:3] + [br(180, 30, 0xC0100210, 0xC0777777)]
        diff = diff_traces(trace(GOLDEN), trace(injected, dropped=2,
                                                capacity=2))
        assert diff.diverged
        assert diff.divergence_kind == DIV_EVENT
        assert diff.divergence_cycle == 180
        assert not diff.complete

    def test_flip_distances_never_negative(self):
        injected = list(GOLDEN)
        injected[0] = br(100, 10, 0xC0100000, 0xC0BAD000)
        diff = diff_traces(trace(GOLDEN), trace(injected),
                           activation_cycle=100_000,
                           activation_instret=9_999)
        assert diff.flip_to_divergence_cycles == 0
        assert diff.flip_to_divergence_instrs == 0

    def test_to_dict_serializes_event_tuple(self):
        injected = list(GOLDEN)
        injected[1] = br(120, 15, 0xC0100060, 0xC0BAD000)
        data = diff_traces(trace(GOLDEN), trace(injected)).to_dict()
        assert data["diverged"] is True
        assert isinstance(data["divergence_event"], list)
