"""Exotic/legacy instructions that bit-flips can reach."""

import pytest

from tests.helpers import run_fragment


class TestLegacyArith:
    def test_aam_divides_al(self):
        body = """
    mov eax, 0x4B       ; 75
    aam 10
    ; ah = 7, al = 5
        """
        assert run_fragment(body) & 0xFFFF == 0x0705

    def test_aad_recombines(self):
        body = """
    mov eax, 0x0705
    aad 10
        """
        assert run_fragment(body) & 0xFF == 75

    def test_daa_adjusts(self):
        body = """
    mov eax, 0x0F
    daa
    movzx eax, al
        """
        assert run_fragment(body) == 0x15

    def test_cmpxchg_match(self):
        body = """
    mov eax, 5
    mov ecx, 9
    mov ebx, 5
    cmpxchg ebx, ecx    ; eax==ebx -> ebx = ecx
    mov eax, ebx
        """
        assert run_fragment(body) == 9

    def test_cmpxchg_mismatch_loads_acc(self):
        body = """
    mov eax, 1
    mov ecx, 9
    mov ebx, 5
    cmpxchg ebx, ecx    ; mismatch -> eax = ebx
        """
        assert run_fragment(body) == 5

    def test_xadd(self):
        body = """
    mov eax, 0
    mov ebx, 10
    mov ecx, 3
    xadd ebx, ecx       ; ebx=13, ecx=10
    mov eax, ebx
    shl eax, 8
    or eax, ecx
        """
        assert run_fragment(body) == (13 << 8) | 10


class TestRotateThroughCarry:
    def test_rcl_pulls_carry_in(self):
        body = """
    stc
    mov eax, 0
    rcl eax, 1          ; eax = 1 (old CF)
        """
        assert run_fragment(body) == 1

    def test_rcr_pushes_low_bit_to_carry(self):
        body = """
    clc
    mov eax, 3
    rcr eax, 1          ; eax = 1, CF = 1
    setb al
    movzx eax, al
        """
        assert run_fragment(body) == 1

    def test_shld_merges(self):
        body = """
    mov eax, 0x0000FFFF
    mov edx, 0xAAAA0000
    shld eax, edx, 16
        """
        assert run_fragment(body) == 0xFFFFAAAA


class TestControlFlowExotics:
    def test_loop_decrements_ecx(self):
        body = """
    mov eax, 0
    mov ecx, 5
top:
    inc eax
    loop top
        """
        assert run_fragment(body) == 5

    def test_jecxz_taken_when_zero(self):
        body = """
    xor ecx, ecx
    mov eax, 1
    jecxz skip
    mov eax, 99
skip:
        """
        assert run_fragment(body) == 1

    def test_into_fires_on_overflow(self):
        from repro.cpu.traps import TripleFault
        from tests.helpers import FlatMachine
        machine = FlatMachine("""
_start:
    mov eax, 0x7fffffff
    add eax, 1          ; OF set
    into                ; -> vector 4, no IDT -> reset
""")
        with pytest.raises(TripleFault):
            machine.cpu.run(10_000)

    def test_far_call_valid_selector_roundtrip(self):
        body = """
    push cs_restore     ; not needed; direct far call:
    pop eax
    mov eax, 0
    lcall_here:
    jmp after
cs_restore:
    .long 0
after:
    mov eax, 42
        """
        assert run_fragment(body) == 42

    def test_enter_nested_zero(self):
        body = """
    enter 8, 0
    mov eax, ebp
    sub eax, esp        ; 8 allocated
    leave
        """
        assert run_fragment(body) == 8


class TestSegmentExotics:
    def test_push_pop_segment_roundtrip(self):
        body = """
    mov eax, 0x2B
    mov es, eax
    push es
    pop eax
        """
        assert run_fragment(body) == 0x2B

    def test_lds_with_valid_selector(self):
        body = """
    mov dword [farptr], target_value
    mov word [farptr+4], 0x2B
    lds eax, [farptr]
    jmp done
.align 4
.global farptr
    .long 0, 0
.global target_value
done:
        """
        result = run_fragment(body)
        assert result != 0  # loaded the offset word

    def test_mov_from_sr(self):
        body = """
    mov eax, ds
        """
        assert run_fragment(body) in (0x18, 0x2B)
