"""Assembler unit tests: encodings, relaxation, directives, errors."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.decoder import decode_all


def asm_bytes(line, base=0):
    return assemble(line, base=base).code


class TestEncodings:
    @pytest.mark.parametrize("source,expected", [
        ("nop", b"\x90"),
        ("ret", b"\xc3"),
        ("ret 8", b"\xc2\x08\x00"),
        ("leave", b"\xc9"),
        ("ud2", b"\x0f\x0b"),
        ("int 0x80", b"\xcd\x80"),
        ("int3", b"\xcc"),
        ("iret", b"\xcf"),
        ("hlt", b"\xf4"),
        ("cli", b"\xfa"),
        ("sti", b"\xfb"),
        ("push eax", b"\x50"),
        ("pop ebp", b"\x5d"),
        ("push 5", b"\x6a\x05"),
        ("push 0x12345678", b"\x68\x78\x56\x34\x12"),
        ("inc eax", b"\x40"),
        ("dec ecx", b"\x49"),
        ("mov eax, 1", b"\xb8\x01\x00\x00\x00"),
        ("mov eax, ecx", b"\x89\xc8"),
        ("mov eax, [ebp+8]", b"\x8b\x45\x08"),
        ("mov [ebp-4], eax", b"\x89\x45\xfc"),
        ("mov eax, [edx+eax*4]", b"\x8b\x04\x82"),
        ("lea eax, [edx+eax*4]", b"\x8d\x04\x82"),
        ("test eax, eax", b"\x85\xc0"),
        ("test edx, edx", b"\x85\xd2"),
        ("cmp eax, 5", b"\x83\xf8\x05"),
        ("cmp eax, 0x1234", b"\x3d\x34\x12\x00\x00"),
        ("xor edx, edx", b"\x31\xd2"),
        ("xor al, 0x56", b"\x34\x56"),
        ("add esp, 4", b"\x83\xc4\x04"),
        ("sub esp, 20", b"\x83\xec\x14"),
        ("cdq", b"\x99"),
        ("idiv ecx", b"\xf7\xf9"),
        ("div ecx", b"\xf7\xf1"),
        ("imul eax, ecx", b"\x0f\xaf\xc1"),
        ("shl eax, 4", b"\xc1\xe0\x04"),
        ("shl eax, 1", b"\xd1\xe0"),
        ("sar eax, cl", b"\xd3\xf8"),
        ("movzx eax, byte [eax]", b"\x0f\xb6\x00"),
        ("movb [ecx], al", b"\x88\x01"),
        ("sete al", b"\x0f\x94\xc0"),
        ("rep movsd", b"\xf3\xa5"),
        ("rep stosd", b"\xf3\xab"),
        ("rdtsc", b"\x0f\x31"),
        ("wrmsr", b"\x0f\x30"),
        ("mov dr0, eax", b"\x0f\x23\xc0"),
        ("mov eax, cr2", b"\x0f\x20\xd0"),
        ("mov cr3, eax", b"\x0f\x22\xd8"),
        ("pusha", b"\x60"),
        ("popa", b"\x61"),
        ("xchg eax, ecx", b"\x91"),
        ("invlpg [eax]", b"\x0f\x01\x38"),
        ("mov ds, edx", b"\x8e\xda"),
        ("call eax", b"\xff\xd0"),
        ("shrd eax, edx, 12", b"\x0f\xac\xd0\x0c"),
    ])
    def test_bytes(self, source, expected):
        assert asm_bytes(source) == expected

    def test_roundtrip_through_decoder(self):
        source = """
        push ebp
        mov ebp, esp
        mov eax, [ebp+8]
        add eax, [ebp+12]
        imul eax, eax, 3
        leave
        ret
        """
        instrs = decode_all(asm_bytes(source))
        assert [i.op for i in instrs] == [
            "push", "mov", "mov", "add", "imul3", "leave", "ret"]


class TestBranchesAndLabels:
    def test_short_branch_backward(self):
        program = assemble("top:\n  dec ecx\n  jne top\n", base=0)
        # dec(1) + jne rel8(2): rel = 0 - 3 = -3
        assert program.code == b"\x49\x75\xfd"

    def test_short_jmp_forward(self):
        program = assemble("jmp skip\nnop\nskip:\nret")
        assert program.code == b"\xeb\x01\x90\xc3"

    def test_long_branch_promotion(self):
        source = "je far\n" + "nop\n" * 200 + "far:\nret"
        program = assemble(source)
        # must use the 6-byte 0f 84 form
        assert program.code[:2] == b"\x0f\x84"
        instrs = decode_all(program.code)
        target = instrs[0].rel + 6
        assert program.code[target] == 0xC3

    def test_call_rel32(self):
        program = assemble("call f\nf:\nret")
        assert program.code == b"\xe8\x00\x00\x00\x00\xc3"

    def test_symbol_immediate(self):
        program = assemble("mov eax, data\nret\n.global data\n.long 7",
                           base=0x1000)
        addr = program.symbols["data"]
        assert program.code[1:5] == addr.to_bytes(4, "little")

    def test_symbol_memory(self):
        program = assemble("mov eax, [data]\nret\n.global data\n.long 7",
                           base=0x1000)
        assert program.code[0:2] == b"\x8b\x05"


class TestDirectives:
    def test_long_and_byte(self):
        program = assemble(".long 1, 2\n.byte 3, 4")
        assert program.code == (b"\x01\x00\x00\x00\x02\x00\x00\x00"
                                b"\x03\x04")

    def test_asciz(self):
        program = assemble('.asciz "hi\\n"')
        assert program.code == b"hi\n\x00"

    def test_space(self):
        assert assemble(".space 5").code == b"\x00" * 5
        assert assemble(".space 3, 0xff").code == b"\xff" * 3

    def test_align(self):
        program = assemble("nop\n.align 8\nret", base=0)
        assert len(program.code) == 9
        assert program.code[8] == 0xC3

    def test_func_metadata(self):
        program = assemble(
            ".func f kernel\nf:\nnop\nret\n.endfunc\n"
            ".func g mm\ng:\nret\n.endfunc", base=0x100)
        names = [(f.name, f.subsystem, f.size) for f in program.functions]
        assert names == [("f", "kernel", 2), ("g", "mm", 1)]


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate eax")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError):
            assemble("mov eax, nowhere")

    def test_esp_index_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("mov eax, [eax+esp*2]")

    def test_unclosed_func(self):
        with pytest.raises(AssemblerError):
            assemble(".func f kernel\nret")

    def test_bad_shift_register(self):
        with pytest.raises(AssemblerError):
            assemble("shl eax, dl")
