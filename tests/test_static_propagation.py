"""Symbolic error-propagation: lattice semantics, summaries, verdicts."""

from repro.isa.assembler import assemble
from repro.staticanalysis.propagation import (
    CORRUPT_PC,
    CORRUPT_VALUE,
    PropagationAnalyzer,
    TRAP_GPF,
    TRAP_INVALID_OPCODE,
    TRAP_NONE,
    TRAP_PAGE_FAULT,
    latency_within_bounds,
    trap_of_cause,
)

BASE = 0x1000


def _analyzer(body, name="f"):
    prog = assemble(".func %s kernel\n%s:\n%s\n.endfunc"
                    % (name, name, body), base=BASE)
    return PropagationAnalyzer(prog), prog


class TestSeedAndPromotion:
    def test_corrupt_value_promotes_at_addressing_use(self):
        # Flipping bit 5 of `xor eax,eax` (31 c0) yields `adc eax,eax`
        # (11 c0): eax keeps garbage, flows into ecx, and is used as an
        # index three instructions later — the predicted fault site.
        analyzer, _ = _analyzer("""
  push eax
  xor eax, eax
  mov ecx, eax
  pop eax
  mov eax, [eax+ecx*4]
  ret""")
        verdict = analyzer.analyze_site("f", BASE + 1, 0, 5)
        assert verdict.seed == CORRUPT_VALUE
        assert {TRAP_PAGE_FAULT, TRAP_GPF} <= verdict.traps
        assert verdict.latency_lo == 3

    def test_undecodable_mutation_is_immediate_ud(self):
        # 0f af (imul) -> 0f ae: not decoded by this subset.
        analyzer, _ = _analyzer("""
  imul eax, ebx
  mov [esi], eax
  ret""")
        verdict = analyzer.analyze_site("f", BASE, 1, 0)
        assert verdict.seed == CORRUPT_PC
        assert verdict.traps == frozenset((TRAP_INVALID_OPCODE,))
        assert (verdict.latency_lo, verdict.latency_hi) == (0, 0)

    def test_length_change_is_wild(self):
        # b8 (mov eax,imm32) -> b0 (mov al,imm8): stream desync — any
        # trap can fire, at any point, anywhere.
        analyzer, _ = _analyzer("""
  mov eax, 5
  mov [esi], eax
  ret""")
        verdict = analyzer.analyze_site("f", BASE, 0, 3)
        assert verdict.seed == CORRUPT_PC
        assert len(verdict.traps) >= 4
        assert verdict.latency_lo == 0
        assert verdict.latency_hi is None

    def test_redundant_encoding_is_silent(self):
        # 31 c0 vs 33 c0: direction bit, same register both sides.
        analyzer, _ = _analyzer("""
  xor eax, eax
  mov [esi], eax
  ret""")
        verdict = analyzer.analyze_site("f", BASE, 0, 1)
        assert verdict.predicts_silent_only
        assert verdict.traps == frozenset((TRAP_NONE,))

    def test_global_store_of_corrupt_value_escapes(self):
        # The wrong value reaches a kernel global: no trap is forced,
        # but the corruption outlives the function.
        analyzer, _ = _analyzer("""
  mov eax, 5
  mov [0x2000], eax
  ret""")
        verdict = analyzer.analyze_site("f", BASE, 3, 2)
        assert verdict.seed == CORRUPT_VALUE
        assert verdict.escapes

    def test_unknown_site_gets_sound_catch_all(self):
        analyzer, _ = _analyzer("  mov eax, 5\n  ret")
        verdict = analyzer.analyze_site("nope", 0xdead, 0, 0)
        assert verdict.predicts_crash
        assert verdict.latency_lo == 0
        assert verdict.latency_hi is None


class TestFunctionSummaries:
    def test_straight_line_lengths(self):
        analyzer, _ = _analyzer("  mov eax, 1\n  add eax, 2\n  ret")
        summary = analyzer.summary("f")
        assert summary.min_len == 3
        assert summary.max_len == 3
        assert not summary.noreturn

    def test_loop_makes_max_len_unbounded(self):
        analyzer, _ = _analyzer("""
loop:
  dec eax
  jnz loop
  ret""")
        summary = analyzer.summary("f")
        assert summary.max_len is None
        assert summary.min_len == 3

    def test_kernel_panic_and_do_exit_are_noreturn(self, kernel):
        analyzer = PropagationAnalyzer(kernel)
        assert analyzer.summary("panic").noreturn
        assert analyzer.summary("do_exit").noreturn
        assert not analyzer.summary("sys_getpid").noreturn


class TestLatencyConversion:
    def test_unmeasured_latency_is_never_within(self):
        assert not latency_within_bounds(None, 0, None)

    def test_lower_bound_is_direct_in_cycles(self):
        assert latency_within_bounds(5, 3, None)
        assert not latency_within_bounds(2, 3, None)

    def test_upper_bound_allows_worst_case_cpi_plus_slack(self):
        assert latency_within_bounds(10, 0, 1)        # 216-cycle ceiling
        assert not latency_within_bounds(10_000, 0, 10)

    def test_trap_of_cause_vocabulary(self):
        assert trap_of_cause("null_pointer") == TRAP_PAGE_FAULT
        assert trap_of_cause("paging_request") == TRAP_PAGE_FAULT
        assert trap_of_cause("invalid_opcode") == TRAP_INVALID_OPCODE
        assert trap_of_cause("kernel_panic") == "other"


class TestKernelImage:
    def test_every_function_summarizes(self, kernel):
        analyzer = PropagationAnalyzer(kernel)
        for info in kernel.functions:
            summary = analyzer.summary(info.name)
            assert summary.min_len >= 0
            if summary.max_len is not None:
                assert summary.max_len >= summary.min_len

    def test_fs_site_slice_yields_sound_verdicts(self, kernel):
        analyzer = PropagationAnalyzer(kernel)
        checked = 0
        for info in kernel.functions:
            if info.subsystem != "fs" or checked >= 200:
                continue
            cfg = analyzer.cfg(info.name)
            addrs = sorted(a for block in cfg.blocks.values()
                           for a in (i.addr for i in block.instrs))
            for addr in addrs[:5]:
                for bit in (0, 5):
                    verdict = analyzer.analyze_site(info.name, addr,
                                                    0, bit)
                    assert verdict.traps
                    if (verdict.latency_lo is not None
                            and verdict.latency_hi is not None):
                        assert verdict.latency_lo <= verdict.latency_hi
                    checked += 1
        assert checked

    def test_propagation_matrix_keeps_home_subsystem(self, kernel):
        from repro.injection.campaigns import (
            plan_campaign,
            select_targets,
        )
        from repro.profiling.sampler import profile_kernel
        from repro.userland.build import build_all_programs
        from repro.userland.programs import WORKLOADS

        profile = profile_kernel(kernel, build_all_programs(),
                                 WORKLOADS)
        functions = select_targets(kernel, profile, "A")
        specs = plan_campaign(kernel, "A", functions,
                              byte_stride=40)[:80]
        analyzer = PropagationAnalyzer(kernel)
        matrix = analyzer.propagation_matrix(specs)
        assert matrix
        for source, row in matrix.items():
            assert source in row or any(row.values())
