"""Extension campaign R: register corruption at an instruction trigger."""

from repro.injection.campaigns import select_targets
from repro.injection.register_campaign import (
    plan_register_campaign,
    run_register_campaign,
    run_register_spec,
)


class TestPlan:
    def test_plan_is_deterministic_and_bounded(self, kernel, profile):
        functions = select_targets(kernel, profile, "A")
        first = plan_register_campaign(kernel, functions, seed=5)
        second = plan_register_campaign(kernel, functions, seed=5)
        assert [(s.instr_addr, s.reg, s.bit) for s in first] \
            == [(s.instr_addr, s.reg, s.bit) for s in second]
        from collections import Counter
        per_function = Counter(s.function for s in first)
        assert max(per_function.values()) <= 6

    def test_esp_excluded_by_default(self, kernel, profile):
        functions = select_targets(kernel, profile, "A")
        specs = plan_register_campaign(kernel, functions)
        assert all(s.reg != 4 for s in specs)

    def test_reg_names(self, kernel, profile):
        functions = select_targets(kernel, profile, "A")[:2]
        specs = plan_register_campaign(kernel, functions)
        assert all(s.reg_name in ("eax", "ecx", "edx", "ebx", "ebp",
                                  "esi", "edi") for s in specs)


class TestRun:
    def test_small_run_classifies(self, harness):
        results = run_register_campaign(harness, max_specs=12,
                                        grade=False)
        assert len(results) == 12
        outcomes = {r.outcome for r in results}
        assert outcomes <= {"not_activated", "not_manifested",
                            "fail_silence_violation", "crash_dumped",
                            "crash_unknown", "hang"}
        for result in results:
            assert result.campaign == "R"
            assert result.mnemonic.startswith("reg:")

    def test_high_bit_of_ebp_usually_fatal(self, kernel, harness,
                                           profile):
        """Flipping ebp's top bit mid-function dereferences wild memory."""
        functions = select_targets(kernel, profile, "A")
        specs = plan_register_campaign(kernel, functions,
                                       per_function=30)
        target = next(s for s in specs if s.reg == 5)
        target.bit = 31
        result = run_register_spec(harness, target, grade=False)
        if result.activated:
            assert result.outcome in ("crash_dumped", "crash_unknown",
                                      "hang", "fail_silence_violation",
                                      "not_manifested")
