"""User binary format and builder invariants."""

import struct

import pytest

from repro.kernel.layout import KernelLayout
from repro.machine.machine import parse_bx_header
from repro.userland.build import build_program
from repro.userland.programs import PROGRAMS, WORKLOADS


class TestBinaryFormat:
    def test_header_magic_and_entry(self, binaries):
        for name, binary in binaries.items():
            magic, entry, filesz, bss = parse_bx_header(binary.image)
            assert magic == 0x0B17C0DE, name
            assert entry == binary.entry
            assert filesz == len(binary.image)
            assert bss == 0

    def test_entry_points_into_text(self, binaries):
        layout = KernelLayout()
        for name, binary in binaries.items():
            assert layout.USER_TEXT < binary.entry \
                < layout.USER_TEXT + len(binary.image)

    def test_data_is_page_separated_from_text(self, binaries):
        """Data writes must not invalidate decoded text pages."""
        layout = KernelLayout()
        for name, binary in binaries.items():
            text_end = max(f.end for f in binary.functions)
            data_start = layout.USER_TEXT + (
                (text_end - layout.USER_TEXT + 4095) // 4096 * 4096)
            # everything after text up to the page boundary is nop pad
            pad = binary.image[text_end - layout.USER_TEXT:
                               data_start - layout.USER_TEXT]
            assert set(pad) <= {0x90}, name

    def test_iters_parameter_changes_binary(self):
        small = build_program("hanoi", iters=1)
        large = build_program("hanoi", iters=9)
        assert small.image != large.image
        assert len(small.image) == len(large.image)  # only the const

    def test_every_workload_has_a_program(self):
        for name in WORKLOADS:
            assert name in PROGRAMS

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            build_program("doom")

    def test_functions_metadata_sorted_and_disjoint(self, binaries):
        for binary in binaries.values():
            functions = sorted(binary.functions, key=lambda f: f.start)
            for first, second in zip(functions, functions[1:]):
                assert first.end <= second.start

    def test_binaries_fit_ext2lite_file_limit(self, binaries):
        from repro.machine.disk import BLOCK_SIZE, NBLOCKS_PER_INODE
        for name, binary in binaries.items():
            assert len(binary.image) <= NBLOCKS_PER_INODE * BLOCK_SIZE, \
                "%s too big for 12 direct blocks" % name
