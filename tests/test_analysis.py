"""Analysis/statistics unit tests over synthetic injection results."""

import pytest

from repro.analysis.availability import (
    allowed_failures_per_year,
    availability_given_rates,
    downtime_budget,
    years_between_failures,
)
from repro.analysis.propagation import (
    propagation_graph,
    propagation_matrix,
    propagation_rate,
)
from repro.analysis.stats import (
    activation_stats,
    crash_cause_distribution,
    latency_histogram,
    outcome_pie,
    per_function_crash_shares,
    severity_counts,
    subsystem_outcome_table,
)
from repro.injection.outcomes import InjectionResult


def make_result(**kw):
    defaults = dict(campaign="A", function="f", subsystem="fs",
                    addr=0xC0100000, byte_offset=0, bit=0, mnemonic="mov",
                    workload="syscall", activated=True,
                    outcome="not_manifested")
    defaults.update(kw)
    return InjectionResult(**defaults)


@pytest.fixture()
def sample():
    return [
        make_result(outcome="not_activated", activated=False),
        make_result(outcome="not_manifested"),
        make_result(outcome="fail_silence_violation"),
        make_result(outcome="crash_dumped", crash_cause="null_pointer",
                    crash_subsystem="fs", latency=5, severity="normal"),
        make_result(outcome="crash_dumped", crash_cause="paging_request",
                    crash_subsystem="kernel", latency=250_000,
                    severity="severe"),
        make_result(subsystem="mm", outcome="crash_dumped",
                    crash_cause="invalid_opcode", crash_subsystem="mm",
                    latency=2, severity="most_severe"),
        make_result(subsystem="mm", outcome="hang"),
        make_result(subsystem="kernel", outcome="crash_unknown"),
    ]


class TestStats:
    def test_activation(self, sample):
        injected, activated = activation_stats(sample)
        assert injected == 8
        assert activated == 7

    def test_outcome_pie_counts_activated_only(self, sample):
        pie = outcome_pie(sample)
        assert pie["activated"] == 7
        assert pie["crash_dumped"] == 3
        assert pie["hang"] == 1
        assert "not_activated" not in pie

    def test_subsystem_table_rows(self, sample):
        rows = subsystem_outcome_table(sample)
        by_name = {row["subsystem"]: row for row in rows}
        assert by_name["fs"]["injected"] == 5
        assert by_name["fs"]["activated"] == 4
        assert by_name["fs"]["crash_hang"] == 2
        assert by_name["mm"]["crash_hang"] == 2
        assert by_name["Total"]["injected"] == 8

    def test_crash_causes(self, sample):
        causes = crash_cause_distribution(sample)
        assert causes == {"null_pointer": 1, "paging_request": 1,
                          "invalid_opcode": 1}

    def test_latency_histogram(self, sample):
        histogram = latency_histogram(sample)
        assert histogram["0-10"] == 2
        assert histogram[">1e5"] == 1

    def test_latency_by_subsystem(self, sample):
        per = latency_histogram(sample, by_subsystem=True)
        assert per["fs"]["0-10"] == 1
        assert per["mm"]["0-10"] == 1

    def test_per_function_shares(self, sample):
        shares = per_function_crash_shares(sample)
        name, count, share = shares["fs"][0]
        assert name == "f" and count == 2 and share == 1.0

    def test_severity_counts(self, sample):
        counts = severity_counts(sample)
        assert counts == {"normal": 1, "severe": 1, "most_severe": 1}


class TestPropagation:
    def test_matrix(self, sample):
        matrix = propagation_matrix(sample)
        assert matrix["fs"]["fs"] == 1
        assert matrix["fs"]["kernel"] == 1
        assert matrix["mm"]["mm"] == 1

    def test_rate(self, sample):
        # 3 attributable dumped crashes, 1 escaped its subsystem
        assert propagation_rate(sample) == pytest.approx(1 / 3)

    def test_rate_excludes_wild_by_default(self, sample):
        wild = sample + [make_result(outcome="crash_dumped",
                                     crash_cause="gpf",
                                     crash_subsystem=None)]
        assert propagation_rate(wild) == pytest.approx(1 / 3)
        assert propagation_rate(wild, include_wild=True) \
            == pytest.approx(2 / 4)

    def test_wild_fraction(self, sample):
        from repro.analysis.propagation import wild_crash_fraction
        wild = sample + [make_result(outcome="crash_dumped",
                                     crash_cause="gpf",
                                     crash_subsystem=None)]
        assert wild_crash_fraction(wild) == pytest.approx(1 / 4)

    def test_graph_structure(self, sample):
        graph = propagation_graph(sample, "fs")
        assert graph.nodes["fs"]["crashes"] == 2
        assert graph.edges["fs", "kernel"]["fraction"] == pytest.approx(0.5)
        assert graph.nodes["kernel"]["causes"] == {"paging_request": 1}

    def test_wild_eip_bucketed(self):
        results = [make_result(outcome="crash_dumped",
                               crash_cause="gpf", crash_subsystem=None)]
        matrix = propagation_matrix(results)
        assert matrix["fs"]["(wild)"] == 1


class TestAvailability:
    def test_five_nines_budget(self):
        # ~5.3 minutes/year
        assert downtime_budget(0.99999) == pytest.approx(315.36)

    def test_paper_claims(self):
        """§7.1: at 5 nines, one most-severe (~1 h) every ~12 years."""
        years = years_between_failures(0.99999, 55 * 60)
        assert 9 < years < 12
        # a normal crash (<4 min reboot) at most ~once a year
        per_year = allowed_failures_per_year(0.99999, 4 * 60)
        assert 1.0 < per_year < 1.5

    def test_availability_from_rates(self):
        availability = availability_given_rates(
            {"normal": (1, 240), "most_severe": (1 / 12, 3300)})
        assert 0.99998 < availability < 0.999999

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            downtime_budget(1.5)
        with pytest.raises(ValueError):
            allowed_failures_per_year(0.999, 0)


class TestResultModel:
    def test_roundtrip(self):
        result = make_result(outcome="crash_dumped", latency=42,
                             crash_cause="gpf")
        clone = InjectionResult.from_dict(result.to_dict())
        assert clone.latency == 42
        assert clone.crash_cause == "gpf"
        assert clone.crashed

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            InjectionResult(bogus=1)


class TestLatencyPropagation:
    def test_split_and_medians(self, ):
        from repro.analysis.stats import latency_by_propagation
        results = [
            make_result(outcome="crash_dumped", crash_cause="gpf",
                        crash_subsystem="fs", latency=4),
            make_result(outcome="crash_dumped", crash_cause="gpf",
                        crash_subsystem="fs", latency=6),
            make_result(outcome="crash_dumped", crash_cause="gpf",
                        crash_subsystem="kernel", latency=100_000),
        ]
        split = latency_by_propagation(results)
        assert split["contained"] == (2, 5)
        assert split["escaped"] == (1, 100_000)

    def test_empty(self):
        from repro.analysis.stats import latency_by_propagation
        split = latency_by_propagation([])
        assert split["contained"] == (0, None)
        assert split["escaped"] == (0, None)
