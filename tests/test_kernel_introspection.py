"""White-box checks of kernel state via the symbol table."""

from repro.injection.runner import BOOT_MARKER
from repro.machine.machine import Machine, build_standard_disk


def kernel_global(machine, kernel, name, index=0):
    return machine.read_word(kernel.symbols[name] + 4 * index)


class TestMemoryAccounting:
    def test_no_page_leak_across_workload(self, kernel, binaries):
        """Free-page count returns to its post-boot value after the
        workload's processes exit (fork/exec/exit cycle leaks nothing)."""
        disk = build_standard_disk(binaries, "looper")
        machine = Machine(kernel, disk)
        machine.run_until_console(BOOT_MARKER)
        free_before = kernel_global(machine, kernel, "nr_free_pages")
        result = machine.run(max_cycles=120_000_000)
        assert result.status == "shutdown" and result.exit_code == 0
        free_after = kernel_global(machine, kernel, "nr_free_pages")
        # init's own pages are alive in both snapshots, and the page
        # cache may legitimately retain up to NR_PGCACHE pages it
        # populated for the exec'd binaries; anything beyond that would
        # be a real fork/exec/exit leak.
        assert free_after >= free_before - 16

    def test_cow_shares_pages_after_fork(self, kernel, binaries):
        """During spawn, fork raises refcounts on shared frames."""
        disk = build_standard_disk(binaries, "spawn")
        machine = Machine(kernel, disk)
        machine.run_until_console(BOOT_MARKER)
        free_at_marker = kernel_global(machine, kernel, "nr_free_pages")
        assert free_at_marker > 100  # most of the 1280 pages are free

    def test_jiffies_advance(self, kernel, binaries):
        disk = build_standard_disk(binaries, "dhry")
        machine = Machine(kernel, disk)
        result = machine.run(max_cycles=120_000_000)
        assert result.status == "shutdown"
        jiffies = kernel_global(machine, kernel, "jiffies")
        assert jiffies > 5  # the timer really ticked

    def test_klog_ring_collects_messages(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        machine = Machine(kernel, disk)
        machine.run(max_cycles=120_000_000)
        base = kernel.symbols["log_buf"]
        ring = bytes(machine.read_byte(base + i) for i in range(256))
        assert b"Linux version" in ring  # printk mirrors into the ring

    def test_task_table_clean_after_shutdown(self, kernel, binaries):
        disk = build_standard_disk(binaries, "spawn")
        machine = Machine(kernel, disk)
        result = machine.run(max_cycles=120_000_000)
        assert result.status == "shutdown"
        base = kernel.symbols["task_structs"]
        task_words = 24
        running = []
        for index in range(8):
            state = machine.read_word(base + 4 * task_words * index)
            if state != 0:
                running.append(index)
        # only idle (0) and init (1) remain at shutdown
        assert set(running) <= {0, 1}


class TestOopsMessages:
    def test_null_pointer_message_matches_paper(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        machine = Machine(kernel, disk)
        machine.run_until_console(BOOT_MARKER)
        # Corrupt fget's first instruction into a near-NULL load:
        # simplest reliable NULL oops: patch do_system_call to
        # dereference eax=0: mov eax,[0x10] = 8b 05 10 00 00 00
        target = kernel.symbols["do_system_call"]
        patch = bytes([0x8B, 0x05, 0x10, 0x00, 0x00, 0x00])

        def corrupt(m):
            for i, b in enumerate(patch):
                m.write_byte(target + i, b)

        machine.arm_breakpoint(target, corrupt)
        result = machine.run(max_cycles=60_000_000)
        assert result.crash is not None
        assert result.crash.vector == 14
        assert result.crash.cr2 == 0x10
        assert ("Unable to handle kernel NULL pointer dereference"
                in result.console)

    def test_paging_request_message(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        machine = Machine(kernel, disk)
        machine.run_until_console(BOOT_MARKER)
        target = kernel.symbols["do_system_call"]
        # mov eax, [0xDEAD0000]
        patch = bytes([0x8B, 0x05, 0x00, 0x00, 0xAD, 0xDE])

        def corrupt(m):
            for i, b in enumerate(patch):
                m.write_byte(target + i, b)

        machine.arm_breakpoint(target, corrupt)
        result = machine.run(max_cycles=60_000_000)
        assert result.crash is not None
        assert result.crash.cr2 == 0xDEAD0000
        assert ("Unable to handle kernel paging request"
                in result.console)
