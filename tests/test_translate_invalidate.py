"""Block-cache self-invalidation: a stale closure never executes.

The translated fast path (:mod:`repro.cpu.translate`) caches compiled
closures keyed by PC.  Every store path notifies the cache with the
physical byte range written; any translated block whose bytes overlap
must be evicted *and*, when the store came from inside the running
block itself, the closure must side-exit at the next instruction
boundary instead of finishing stale.  These tests drive the cache and
the plain interpreter through identical budget-interleaved flip
protocols and require bit-identical architectural state throughout —
the same contract the injection campaigns rely on.
"""

import hashlib

from repro.cpu.cpu import CPU, CpuHalted, WatchdogExpired
from repro.cpu.memory import MemoryBus
from repro.cpu.translate import BlockCache
from repro.isa.assembler import assemble

BASE = 0x1000

LOOP_SRC = """
_start:
    mov eax, 0
    mov ecx, 200
loop:
target:
    add eax, 1
    nop
    dec ecx
    jne loop
    hlt
"""


def build(source=LOOP_SRC, translate=False, ram=0x100000):
    program = assemble(source, base=BASE)
    bus = MemoryBus(ram)
    bus.phys_write_bytes(BASE, program.code)
    cpu = CPU(bus)
    cpu.eip = BASE
    cpu.regs[4] = 0x8000
    cache = BlockCache(bus) if translate else None
    return cpu, program, cache


def fingerprint(cpu):
    return (tuple(cpu.regs), cpu.eip, cpu.cycles, cpu.instret,
            cpu.cf, cpu.zf, cpu.sf, cpu.of, cpu.pf,
            hashlib.sha256(bytes(cpu.bus.ram)).hexdigest())


def drive(cpu, cache, protocol, drain=1_000_000):
    """Run ``protocol`` = [(absolute_budget, [(addr, size, val), ...])].

    Both engines test ``cycles >= max_cycles`` at their loop heads, so
    for any budget they stop at the identical architectural point —
    which makes interleaved flips land on the same instruction
    boundary on either engine.
    """
    step = (lambda b: cache.run(cpu, b)) if cache is not None \
        else cpu.run
    for budget, writes in protocol:
        try:
            step(budget)
        except WatchdogExpired:
            pass
        except CpuHalted:
            return
        for addr, size, value in writes:
            cpu.bus.phys_write(addr, size, value)
    try:
        step(drain)
    except CpuHalted:
        pass


def both_engines(source, protocol):
    """Run the protocol on interpreter and translated cache; return
    (interp_fingerprint, translated_fingerprint, cache)."""
    cpu_i, _, _ = build(source)
    drive(cpu_i, None, protocol)
    cpu_t, _, cache = build(source, translate=True)
    drive(cpu_t, cache, protocol)
    return fingerprint(cpu_i), fingerprint(cpu_t), cache


class TestFlipInvalidation:
    def test_flip_inside_block_matches_interpreter(self):
        # Flip the `add eax, 1` immediate to 3 mid-loop: the resident
        # block must be evicted and the retranslation must see the new
        # byte — exactly when the interpreter's decode cache does.
        program = assemble(LOOP_SRC, base=BASE)
        target = program.symbols["target"]
        protocol = [(40, [(target + 2, 1, 3)])]
        fp_i, fp_t, cache = both_engines(LOOP_SRC, protocol)
        assert fp_i == fp_t
        assert cache.stats()["invalidations"] > 0
        # some iterations added 1, the rest 3
        assert fp_i[0][0] > 200

    def test_intermittent_flip_restore(self):
        # The intermittent fault model flips a byte and restores it a
        # few cycles later.  Both the flip and the restore are stores
        # into translated code: each must invalidate, and the restored
        # block must execute the ORIGINAL semantics again.
        program = assemble(LOOP_SRC, base=BASE)
        target = program.symbols["target"]
        protocol = [
            (40, [(target + 2, 1, 5)]),     # flip imm 1 -> 5
            (120, [(target + 2, 1, 1)]),    # restore
        ]
        fp_i, fp_t, cache = both_engines(LOOP_SRC, protocol)
        assert fp_i == fp_t
        assert cache.stats()["invalidations"] >= 2

    def test_counters_reflect_flush(self):
        cpu, program, cache = build(translate=True)
        target = program.symbols["target"]
        try:
            cache.run(cpu, 40)
        except WatchdogExpired:
            pass
        before = cache.stats()
        assert before["resident"] == len(cache.blocks) > 0
        cpu.bus.phys_write(target + 2, 1, 3)
        after = cache.stats()
        assert after["invalidations"] > before["invalidations"]
        assert after["resident"] == len(cache.blocks)
        assert after["resident"] < before["resident"]


class TestBoundaryWrites:
    def _resident_block(self):
        cpu, program, cache = build(translate=True)
        try:
            cache.run(cpu, 40)
        except WatchdogExpired:
            pass
        key = (cpu.bus.tlb_gen, BASE, 0)
        block = cache.blocks[key]
        assert block.ranges, "block registered no byte ranges"
        return cpu, cache, key, block

    def test_write_at_first_byte_evicts(self):
        cpu, cache, key, block = self._resident_block()
        _page, lo, _hi = block.ranges[0]
        cpu.bus.phys_write(lo, 1, 0x90)
        assert key not in cache.blocks
        assert cache.stale

    def test_write_at_last_byte_evicts(self):
        cpu, cache, key, block = self._resident_block()
        _page, _lo, hi = block.ranges[-1]
        cpu.bus.phys_write(hi - 1, 1, 0x90)
        assert key not in cache.blocks

    def test_write_one_past_end_is_ignored(self):
        cpu, cache, key, block = self._resident_block()
        _page, _lo, hi = block.ranges[-1]
        invalidations = cache.invalidations
        cpu.bus.phys_write(hi, 1, 0x90)
        assert key in cache.blocks
        assert cache.invalidations == invalidations
        assert not cache.stale

    def test_write_just_before_start_is_ignored(self):
        cpu, cache, key, block = self._resident_block()
        _page, lo, _hi = block.ranges[0]
        invalidations = cache.invalidations
        cpu.bus.phys_write(lo - 1, 1, 0x90)
        assert key in cache.blocks
        assert cache.invalidations == invalidations


class TestSelfModifyingStore:
    SMC_SRC = """
_start:
    mov eax, 0
    mov ecx, 6
loop:
    mov dword [patch + 2], %d
patch:
    add eax, 1
    nop
    dec ecx
    jne loop
    hlt
"""

    def _source(self):
        # The store rewrites the add's immediate (patch+2) to 3 while
        # preserving the following three bytes verbatim — a CPL0 store
        # that lands INSIDE the very trace executing it.
        prog = assemble(self.SMC_SRC % 0, base=BASE)
        patch = prog.symbols["patch"]
        code = prog.code
        off = patch - BASE + 2
        tail = code[off + 1:off + 4]
        newdw = int.from_bytes(bytes([3]) + tail, "little")
        return self.SMC_SRC % newdw

    def test_mid_trace_store_side_exits(self):
        # Without the stale side-exit the translated closure would run
        # the OLD `add eax, 1` to block end while the interpreter
        # fetches the new bytes immediately: eax would diverge.
        source = self._source()
        fp_i, fp_t, cache = both_engines(source, [])
        assert fp_i == fp_t
        assert fp_i[0][0] == 18  # every iteration saw the patched +3
        assert cache.stats()["invalidations"] > 0

    def test_smc_under_interleaved_budgets(self):
        # Same program, but chop execution into small budget slices so
        # dispatch re-enters mid-loop; identity must hold at every cut.
        source = self._source()
        protocol = [(b, []) for b in range(5, 60, 7)]
        fp_i, fp_t, _cache = both_engines(source, protocol)
        assert fp_i == fp_t
