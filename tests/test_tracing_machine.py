"""The flight recorder against the real machine.

The load-bearing property: tracing is purely observational.  A traced
run must be architecturally bit-identical to an untraced one — same
console, same cycle counts, same outcome — across golden runs and a
seeded sample of campaign-A fs injections.
"""

import random

import pytest

from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.outcomes import CRASH_DUMPED, NOT_ACTIVATED
from repro.injection.runner import BOOT_MARKER
from repro.machine.machine import Machine, build_standard_disk
from repro.tracing.ring import CHANNELS, EV_SUBSYS


def fs_sample(harness, n=6, seed=2003):
    """A seeded sample of campaign-A fs injection specs."""
    functions = select_targets(harness.kernel, harness.profile, "A")
    specs = [s for s in plan_campaign(harness.kernel, "A", functions,
                                      seed=seed, byte_stride=40)
             if s.subsystem == "fs"]
    return random.Random(seed).sample(specs, min(n, len(specs)))


def arch_fingerprint(result):
    """Everything except the trace enrichment itself."""
    return {k: v for k, v in result.to_dict().items()
            if not k.startswith("trace_")}


class TestBitIdentity:
    def test_golden_run_is_bit_identical(self, harness, traced_harness):
        plain = harness.golden("syscall")
        traced = traced_harness.golden("syscall")
        assert traced.console == plain.console
        assert traced.exit_code == plain.exit_code
        assert traced.cycles == plain.cycles
        assert traced.boot_cycles == plain.boot_cycles
        assert traced.final_disk == plain.final_disk
        assert traced.result.trace is not None
        assert plain.result.trace is None

    def test_injected_runs_are_bit_identical(self, harness,
                                             traced_harness):
        import copy
        specs = fs_sample(harness)
        assert specs
        for spec in specs:
            plain = harness.run_spec(copy.deepcopy(spec), grade=False)
            traced = traced_harness.run_spec(copy.deepcopy(spec),
                                             grade=False)
            assert arch_fingerprint(traced) == arch_fingerprint(plain)

    def test_translated_golden_run_is_bit_identical(self, harness,
                                                    translated_harness):
        plain = harness.golden("syscall")
        translated = translated_harness.golden("syscall")
        assert translated.console == plain.console
        assert translated.exit_code == plain.exit_code
        assert translated.cycles == plain.cycles
        assert translated.boot_cycles == plain.boot_cycles
        assert translated.final_disk == plain.final_disk

    def test_translated_injected_runs_are_bit_identical(
            self, harness, translated_harness):
        import copy
        specs = fs_sample(harness)
        assert specs
        for spec in specs:
            plain = harness.run_spec(copy.deepcopy(spec), grade=False)
            translated = translated_harness.run_spec(
                copy.deepcopy(spec), grade=False)
            assert translated.to_dict() == plain.to_dict()

    def test_translated_traced_runs_match_traced(self, kernel, binaries,
                                                 profile,
                                                 traced_harness):
        # The strongest stamp contract: with tracing on, every trace_*
        # enrichment field derives from hook firing order and exact
        # cycle stamps, so a translated traced run must reproduce the
        # interpreter's traced result INCLUDING the trace fields.
        import copy
        from repro.injection.runner import InjectionHarness
        translated_traced = InjectionHarness(kernel, binaries, profile,
                                             trace=True, translate=True)
        for spec in fs_sample(traced_harness):
            plain = traced_harness.run_spec(copy.deepcopy(spec),
                                            grade=False)
            translated = translated_traced.run_spec(
                copy.deepcopy(spec), grade=False)
            assert translated.to_dict() == plain.to_dict()

    def test_traced_crashes_measure_divergence(self, traced_harness):
        import copy
        specs = fs_sample(traced_harness, n=12)
        crashes = 0
        for spec in specs:
            result = traced_harness.run_spec(copy.deepcopy(spec),
                                             grade=False)
            if result.outcome == NOT_ACTIVATED:
                assert result.trace_diverged is None
                continue
            assert result.trace_complete is True
            if result.outcome != CRASH_DUMPED:
                continue
            crashes += 1
            assert result.trace_diverged
            assert result.trace_flip_to_divergence_cycles is not None
            assert result.trace_flip_to_divergence_cycles >= 0
            assert result.trace_divergence_to_trap_cycles is not None
            # divergence cannot precede activation
            assert result.trace_divergence_cycle >= result.activation_tsc
            assert result.trace_subsystems
        # the seeded fs sample is known to contain dumped crashes
        assert crashes >= 1


class TestMachineTraceApi:
    def boot(self, kernel, binaries, workload="syscall"):
        machine = Machine(kernel,
                          build_standard_disk(binaries, workload))
        machine.run_until_console(BOOT_MARKER, max_cycles=10_000_000)
        return machine

    def test_unknown_channel_rejected(self, kernel, binaries):
        machine = self.boot(kernel, binaries)
        with pytest.raises(ValueError):
            machine.enable_trace(channels=("branch", "nonsense"))

    def test_subsys_channel_records_domain_transitions(self, kernel,
                                                       binaries):
        machine = self.boot(kernel, binaries)
        machine.enable_trace(channels=("subsys",))
        result = machine.run(max_cycles=120_000_000)
        assert result.status == "shutdown"
        transitions = result.trace.of_kind(EV_SUBSYS)
        assert transitions
        domains = {ev[5] for ev in transitions}
        assert "user" in domains
        # adjacent transitions actually change domain
        for ev in transitions:
            assert ev[4] != ev[5]

    def test_bounded_ring_reports_drops(self, kernel, binaries):
        machine = self.boot(kernel, binaries)
        machine.enable_trace(capacity=64)
        result = machine.run(max_cycles=120_000_000)
        trace = result.trace
        assert len(trace.events) == 64
        assert trace.dropped_events == trace.total_events - 64
        assert trace.dropped_events > 0

    def test_all_channels_accepted(self, kernel, binaries):
        machine = self.boot(kernel, binaries)
        machine.enable_trace(channels=CHANNELS, capacity=256)
        result = machine.run(max_cycles=120_000_000)
        kinds = {ev[0] for ev in result.trace.events}
        assert kinds  # windowed, but something of the mix is retained

    def test_clone_starts_untraced(self, kernel, binaries):
        machine = self.boot(kernel, binaries)
        machine.enable_trace()
        clone = machine.snapshot().clone()
        assert clone.tracer is None
        result = clone.run(max_cycles=120_000_000)
        assert result.trace is None


class TestOopsTraceSection:
    def test_annotated_crash_has_trace_section(self, kernel, binaries):
        from repro.analysis.oops import annotate_crash

        machine = Machine(kernel,
                          build_standard_disk(binaries, "syscall"))
        machine.run_until_console(BOOT_MARKER, max_cycles=10_000_000)
        machine.enable_trace(capacity=4096)
        info = next(f for f in kernel.functions
                    if f.name == "alloc_page")
        target = info.start + 12

        def flip(m):
            m.flip_bit(target, 2)

        machine.arm_breakpoint(target, flip)
        result = machine.run(max_cycles=120_000_000)
        assert result.crashes
        crash = result.crashes[-1]
        report = annotate_crash(kernel, crash, machine=machine,
                                trace=result.trace, trace_depth=6)
        assert "TRACE:" in report
        trace_lines = [line for line in report.splitlines()
                       if " -> " in line and "[" in line]
        assert 1 <= len(trace_lines) <= 6
        # every recorded branch retired at or before the dump
        for line in trace_lines:
            cycle = int(line.split("]")[0].split("[")[1])
            assert cycle <= crash.tsc

    def test_no_trace_no_section(self, kernel):
        from repro.analysis.oops import annotate_crash

        class FakeCrash:
            vector, error_code, cr2, eip = 14, 0, 0, 0xC0100000
            pid, tsc, recovered = 1, 1234, 0
            regs = {r: 0 for r in ("eax", "ebx", "ecx", "edx", "esi",
                                   "edi", "ebp", "esp")}

        report = annotate_crash(kernel, FakeCrash())
        assert "TRACE:" not in report
