"""CFG construction: blocks, edges, call graph (staticanalysis.cfg)."""

from repro.isa.assembler import assemble
from repro.staticanalysis.cfg import (
    build_callgraph,
    build_cfg,
    describe_block,
)

BASE = 0x1000


def _cfg(body, name="f"):
    prog = assemble(".func %s kernel\n%s:\n%s\n.endfunc"
                    % (name, name, body), base=BASE)
    info = next(i for i in prog.functions if i.name == name)
    return build_cfg(prog, info), prog


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        cfg, _ = _cfg("  mov eax, 1\n  add eax, 2\n  ret")
        assert len(cfg.blocks) == 1
        block = cfg.blocks[cfg.entry]
        assert [i.op for i in block.instrs] == ["mov", "add", "ret"]
        assert block.succs == []
        assert not block.falls_through

    def test_diamond_blocks_and_edges(self):
        cfg, _ = _cfg("""
  test eax, eax
  jz other
  mov ebx, 1
  jmp join
other:
  mov ebx, 2
join:
  ret""")
        assert len(cfg.blocks) == 4
        entry = cfg.blocks[cfg.entry]
        assert entry.terminator.op == "jcc"
        assert len(entry.succs) == 2
        join = max(cfg.blocks)          # last block holds the ret
        assert sorted(cfg.blocks[join].preds) == sorted(
            b.start for b in cfg.blocks.values() if join in b.succs)
        assert len(cfg.blocks[join].preds) == 2

    def test_loop_has_back_edge(self):
        cfg, prog = _cfg("""
  mov ecx, 4
top:
  dec ecx
  jnz top
  ret""")
        top = prog.symbol("top")
        body = cfg.blocks[top]
        assert top in body.succs        # the back edge
        assert top in body.preds or cfg.entry in body.preds

    def test_call_does_not_split_blocks(self):
        prog = assemble("""
.func g kernel
g:
  ret
.endfunc
.func f kernel
f:
  mov eax, 1
  call g
  add eax, 2
  ret
.endfunc""", base=BASE)
        info = next(i for i in prog.functions if i.name == "f")
        cfg = build_cfg(prog, info)
        assert len(cfg.blocks) == 1
        assert len(cfg.calls) == 1
        _, target = cfg.calls[0]
        assert target == prog.symbol("g")

    def test_external_jump_target_recorded(self):
        prog = assemble("""
.func f kernel
f:
  jmp out
.endfunc
.func out kernel
out:
  ret
.endfunc""", base=BASE)
        info = next(i for i in prog.functions if i.name == "f")
        cfg = build_cfg(prog, info)
        assert prog.symbol("out") in cfg.external_targets
        assert cfg.blocks[cfg.entry].succs == []

    def test_unreachable_block_not_in_reachable_set(self):
        cfg, prog = _cfg("""
  jmp tail
island:
  mov eax, 9
tail:
  ret""")
        island = prog.symbol("island")
        assert island in cfg.blocks
        assert island not in cfg.reachable()
        assert island in cfg.reachable(extra_entries=[island])

    def test_describe_block_names_location(self):
        cfg, _ = _cfg("  mov eax, 1\n  add eax, 2\n  ret")
        text = describe_block(cfg, cfg.entry + 5)
        assert "basic block" in text
        assert "instr #1" in text
        assert "function entry" in text


class TestKernelImage:
    def test_every_function_builds_clean(self, kernel):
        for info in kernel.functions:
            cfg = build_cfg(kernel, info)
            assert not cfg.has_bad_instr, info.name
            assert cfg.entry in cfg.blocks, info.name
            for block in cfg.blocks.values():
                for succ in block.succs:
                    assert succ in cfg.blocks, info.name
                    assert block.start in cfg.blocks[succ].preds

    def test_callgraph_contains_known_edges(self, kernel):
        graph = build_callgraph(kernel)
        assert "sys_open" in graph
        assert "open_namei" in graph["sys_open"]
        assert "strncpy_from_user" in graph["sys_open"]
        assert "<unknown>" not in set().union(*graph.values())
