"""TraceRing edge cases: tiny capacities, wrap order, accounting."""

import pytest

from repro.tracing.ring import (
    CHANNELS,
    DEFAULT_CHANNELS,
    EV_BRANCH,
    EV_SUBSYS,
    EV_TRAP,
    EV_WRITE,
    Trace,
    TraceRing,
    format_event,
)


def ev(i):
    """A distinguishable branch event with increasing stamps."""
    return (EV_BRANCH, 10 * i, i, 0xC0100000 + i, 0xC0200000 + i)


class TestCapacityEdges:
    def test_capacity_zero_counts_but_retains_nothing(self):
        ring = TraceRing(0)
        for i in range(5):
            ring.append(ev(i))
        assert len(ring) == 0
        assert ring.events() == []
        assert ring.total == 5
        assert ring.dropped == 5

    def test_capacity_one_keeps_only_the_newest(self):
        ring = TraceRing(1)
        for i in range(4):
            ring.append(ev(i))
            assert ring.events() == [ev(i)]
        assert ring.total == 4
        assert ring.dropped == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRing(-1)

    def test_unbounded_never_drops(self):
        ring = TraceRing(None)
        events = [ev(i) for i in range(1000)]
        for event in events:
            ring.append(event)
        assert ring.events() == events
        assert ring.dropped == 0


class TestExactFillAndWrap:
    def test_exact_fill_drops_nothing(self):
        ring = TraceRing(4)
        events = [ev(i) for i in range(4)]
        for event in events:
            ring.append(event)
        assert ring.events() == events
        assert ring.total == 4
        assert ring.dropped == 0

    def test_one_past_full_overwrites_the_oldest(self):
        ring = TraceRing(4)
        for i in range(5):
            ring.append(ev(i))
        assert ring.events() == [ev(1), ev(2), ev(3), ev(4)]
        assert ring.dropped == 1

    def test_multi_wrap_preserves_oldest_first_order(self):
        ring = TraceRing(3)
        for i in range(11):        # wraps 3 times, lands mid-buffer
            ring.append(ev(i))
        assert ring.events() == [ev(8), ev(9), ev(10)]
        assert ring.total == 11
        assert ring.dropped == 8
        # stamps strictly increase across the reported window
        stamps = [(e[1], e[2]) for e in ring.events()]
        assert stamps == sorted(stamps)

    def test_drained_plus_dropped_equals_total(self):
        for capacity in (0, 1, 2, 3, 7, None):
            ring = TraceRing(capacity)
            for i in range(23):
                ring.append(ev(i))
            assert len(ring.events()) + ring.dropped == ring.total == 23


class TestTraceSnapshot:
    def make(self, n=6, capacity=None):
        ring = TraceRing(capacity)
        for i in range(n):
            ring.append(ev(i))
        return Trace(DEFAULT_CHANNELS, capacity, ring.events(),
                     ring.total, ring.dropped)

    def test_snapshot_carries_ring_accounting(self):
        trace = self.make(n=9, capacity=4)
        assert len(trace) == 4
        assert trace.total_events == 9
        assert trace.dropped_events == 5

    def test_of_kind_filters(self):
        events = [ev(0), (EV_TRAP, 5, 1, 0xC0100000, 14, 0, 0),
                  (EV_WRITE, 7, 2, 0xC0100000, 0x1000, 4, 0xFF)]
        trace = Trace(CHANNELS, None, events, 3, 0)
        assert trace.branches() == [ev(0)]
        assert len(trace.traps()) == 1
        assert len(trace.writes()) == 1

    def test_last_branches_respects_before_cycle(self):
        trace = self.make(n=10)
        assert trace.last_branches(3) == [ev(7), ev(8), ev(9)]
        # ev(i) has cycle 10*i; cut at cycle 45 excludes ev(5)...
        assert trace.last_branches(2, before_cycle=45) == [ev(3), ev(4)]
        assert trace.last_branches(0) == []

    def test_to_dict_round_trips_counts(self):
        trace = self.make(n=5, capacity=2)
        data = trace.to_dict()
        assert data["total_events"] == 5
        assert data["dropped_events"] == 3
        assert len(data["events"]) == 2


class TestFormatEvent:
    def test_every_kind_formats(self):
        events = [
            ev(1),
            (EV_TRAP, 5, 1, 0xC0100010, 14, 0x2, 0x1234),
            (EV_WRITE, 7, 2, 0xC0100020, 0x1000, 4, 0xDEAD),
            (EV_SUBSYS, 9, 3, 0xC0100030, "fs", "mm"),
        ]
        lines = [format_event(e) for e in events]
        assert "branch" in lines[0]
        assert "vector=14" in lines[1]
        assert "4 bytes" in lines[2]
        assert "fs -> mm" in lines[3]

    def test_symbolize_hook_is_used(self):
        line = format_event(ev(1), symbolize=lambda a: "sym@%x" % a)
        assert "sym@" in line
