"""Trap delivery, IDT semantics, privilege transitions, fault escalation."""

import pytest

from repro.cpu.cpu import CPU, CpuHalted
from repro.cpu.devices import MachineShutdown
from repro.cpu.memory import MemoryBus
from repro.cpu.traps import TripleFault
from repro.isa.assembler import assemble
from tests.helpers import FlatMachine, run_flat

IDT_PROLOGUE = """
_start:
    mov esp, 0x8000
    mov ecx, 0x176
    mov eax, idt
    wrmsr
"""

IDT_TABLE = """
.align 4
idt:
    .long h0,  1        ; 0 divide
    .long h1,  1
    .long h1,  1
    .long h1,  3        ; 3 int3 user-ok
    .long h1,  3
    .long h1,  3
    .long h6,  1        ; 6 invalid opcode
    .long h1,  1
    .long h8,  1        ; 8 double fault
    .long h1,  1
    .long h10, 1        ; 10 invalid TSS
    .long h1,  1
    .long h1,  1
    .long h13, 1        ; 13 GPF
    .long h14, 1        ; 14 page fault
    .space 904          ; up to vector 128
    .long h128, 3
"""


def run_trap_program(body, handlers, max_cycles=200_000):
    source = IDT_PROLOGUE + body + handlers + IDT_TABLE
    return run_flat(source, max_cycles=max_cycles)


GENERIC_HANDLERS = """
h0:
    mov eax, 0xd0
    jmp report
h1:
    mov eax, 0xd1
    jmp report
h6:
    mov eax, 0xd6
    jmp report
h8:
    mov eax, 0xd8
    jmp report
h10:
    mov eax, 0xda
    jmp report
h13:
    mov eax, 0xdd
    jmp report
h14:
    mov eax, 0xde
    jmp report
h128:
    inc eax
    iret
report:
    mov ebx, 0x200100
    mov [ebx], eax
    hlt
"""


class TestVectoring:
    def test_divide_error_vector(self):
        body = "xor edx, edx\n mov eax, 1\n mov ecx, 0\n div ecx\n"
        code, _ = run_trap_program(body, GENERIC_HANDLERS)
        assert code == 0xD0

    def test_invalid_opcode_vector(self):
        code, _ = run_trap_program("ud2\n", GENERIC_HANDLERS)
        assert code == 0xD6

    def test_lret_garbage_selector_gpf(self):
        body = "push 0x1234\n push after\n lret\nafter:\n"
        code, _ = run_trap_program(body, GENERIC_HANDLERS)
        assert code == 0xDD

    def test_lret_tss_selector_invalid_tss(self):
        body = "push 0x30\n push 0\n lret\n"
        code, _ = run_trap_program(body, GENERIC_HANDLERS)
        assert code == 0xDA

    def test_int_0x80_increments(self):
        body = """
        mov eax, 5
        int 0x80
        int 0x80
        mov ebx, 0x200100
        mov [ebx], eax
        hlt
        """
        code, _ = run_trap_program(body, GENERIC_HANDLERS)
        assert code == 7

    def test_into_without_overflow_is_nop(self):
        body = """
        mov eax, 1
        add eax, 1      ; no overflow
        into
        mov ebx, 0x200100
        mov [ebx], 42
        hlt
        """
        code, _ = run_trap_program(body, GENERIC_HANDLERS)
        assert code == 42

    def test_bound_raises_when_outside(self):
        body = """
        mov eax, 9
        bound eax, [limits]
        """
        handlers = GENERIC_HANDLERS.replace("h1:\n    mov eax, 0xd1",
                                            "h1:\n    mov eax, 0xd5")
        extra = "\n.align 4\n.global limits\n.long 0, 5\n"
        code, _ = run_trap_program(body + "\n", handlers + extra)
        assert code == 0xD5


class TestErrorCodes:
    def test_gpf_pushes_error_code(self):
        source = IDT_PROLOGUE + """
        push 0x1234
        push 0
        lret
    h13:
        pop eax             ; the error code
        mov ebx, 0x200100
        mov [ebx], eax
        hlt
    """ + ("h0:\nh1:\nh6:\nh8:\nh10:\nh14:\nh128:\n    hlt\n") + IDT_TABLE
        code, _ = run_flat(source)
        assert code == 0x1234

    def test_divide_error_pushes_no_error_code(self):
        source = IDT_PROLOGUE + """
        mov esi, esp
        xor edx, edx
        mov eax, 1
        mov ecx, 0
        div ecx
    h0:
        ; frame must be exactly [eip][cs][eflags]: esp == esi - 12
        mov eax, esi
        sub eax, esp
        mov ebx, 0x200100
        mov [ebx], eax
        hlt
    """ + ("h1:\nh6:\nh8:\nh10:\nh13:\nh14:\nh128:\n    hlt\n") + IDT_TABLE
        code, _ = run_flat(source)
        assert code == 12


class TestEscalation:
    def test_no_idt_is_triple_fault(self):
        program = assemble("_start:\n ud2\n", base=0x1000)
        bus = MemoryBus(0x100000)
        bus.phys_write_bytes(0x1000, program.code)
        cpu = CPU(bus)
        cpu.eip = 0x1000
        with pytest.raises(TripleFault):
            cpu.run(10_000)

    def test_gate_not_present_escalates(self):
        # IDT exists but the gate's present bit is clear.
        source = """
    _start:
        mov esp, 0x8000
        mov ecx, 0x176
        mov eax, idt
        wrmsr
        ud2
    .align 4
    idt:
        .space 2048
    """
        program = assemble(source, base=0x1000)
        bus = MemoryBus(0x100000)
        bus.phys_write_bytes(0x1000, program.code)
        cpu = CPU(bus)
        cpu.eip = 0x1000
        with pytest.raises(TripleFault):
            cpu.run(10_000)

    def test_bad_kernel_stack_during_delivery_is_triple_fault(self):
        source = IDT_PROLOGUE + """
        mov esp, 0x0        ; wreck the stack...
        ud2                 ; ...then fault
    """ + GENERIC_HANDLERS + IDT_TABLE
        machine = FlatMachine(source)
        # esp=0: pushing the frame wraps to high unmapped (beyond-RAM
        # float) addresses; writes beyond RAM are ignored on this bus,
        # so delivery actually succeeds here.  Instead check the paging
        # case in the kernel integration tests; with paging off this
        # should still deliver and halt at the h6 report.
        code = machine.run(max_cycles=100_000)
        assert code == 0xD6


class TestUserMode:
    def test_privileged_instruction_in_user_gpfs(self):
        # Enter user mode via iret, then try cli -> expect GPF handler.
        source = IDT_PROLOGUE + """
        mov ecx, 0x175      ; esp0
        mov eax, 0x7000
        wrmsr
        push 0x2B           ; user ss
        push 0x6000         ; user esp
        push 0x202
        push 0x23           ; user cs
        push user_code
        iret
    user_code:
        cli                 ; privileged -> #GP
        hlt
    """ + GENERIC_HANDLERS + IDT_TABLE
        code, _ = run_flat(source)
        assert code == 0xDD

    def test_user_int3_allowed_by_dpl3_gate(self):
        source = IDT_PROLOGUE + """
        mov ecx, 0x175
        mov eax, 0x7000
        wrmsr
        push 0x2B
        push 0x6000
        push 0x202
        push 0x23
        push user_code
        iret
    user_code:
        int3
        hlt
    """ + GENERIC_HANDLERS.replace("h1:\n    mov eax, 0xd1",
                                   "h1:\n    mov eax, 0xb3") + IDT_TABLE
        code, _ = run_flat(source)
        assert code == 0xB3

    def test_user_int_to_kernel_gate_gpfs(self):
        # int 0x10 targets a DPL0 gate -> GPF, not vector 0x10.
        source = IDT_PROLOGUE + """
        mov ecx, 0x175
        mov eax, 0x7000
        wrmsr
        push 0x2B
        push 0x6000
        push 0x202
        push 0x23
        push user_code
        iret
    user_code:
        int 0x10
        hlt
    """ + GENERIC_HANDLERS + IDT_TABLE
        code, _ = run_flat(source)
        assert code == 0xDD

    def test_iret_restores_user_context(self):
        source = IDT_PROLOGUE + """
        mov ecx, 0x175
        mov eax, 0x7000
        wrmsr
        push 0x2B
        push 0x6000
        push 0x202
        push 0x23
        push user_code
        iret
    user_code:
        mov eax, 20
        int 0x80            ; kernel increments eax and irets
        int 0x80
        mov ebx, 0x200100
        mov [ebx], eax      ; user write to MMIO: fine with paging off
        hlt
    """ + GENERIC_HANDLERS + IDT_TABLE
        # final hlt in user mode raises GPF -> vector 13 handler,
        # but the shutdown write lands first.
        try:
            code, _ = run_flat(source)
        except (CpuHalted, MachineShutdown):
            raise AssertionError("expected clean shutdown")
        assert code == 22


class TestHaltSemantics:
    def test_hlt_with_interrupts_off_raises(self):
        machine = FlatMachine("_start:\n cli\n hlt\n")
        with pytest.raises(CpuHalted):
            machine.cpu.run(10_000)

    def test_timer_fires_and_returns(self):
        source = IDT_PROLOGUE + """
        sti
        mov eax, 0
    loop:
        cmp eax, 3
        jl loop_on
        mov ebx, 0x200100
        mov [ebx], eax
        hlt
    loop_on:
        hlt                 ; wait for a tick
        jmp loop
    """ + """
    h32:
        inc eax
        iret
    h0:
    h1:
    h6:
    h8:
    h10:
    h13:
    h14:
    h128:
        hlt
    """ + """
.align 4
idt:
    .long h0,  1
    .long h1,  1
    .long h1,  1
    .long h1,  3
    .long h1,  3
    .long h1,  3
    .long h6,  1
    .long h1,  1
    .long h8,  1
    .long h1,  1
    .long h10, 1
    .long h1,  1
    .long h1,  1
    .long h13, 1
    .long h14, 1
    .space 136
    .long h32, 1
    .space 760
    .long h128, 3
"""
        machine = FlatMachine(source)
        machine.cpu.timer_interval = 500
        machine.cpu.timer_next = 500
        code = machine.run(max_cycles=100_000)
        assert code == 3
