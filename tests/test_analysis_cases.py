"""Case-study extraction (Tables 6/7 machinery) against the real kernel."""

from repro.analysis.cases import case_study, find_case_studies, \
    format_case_study
from repro.injection.outcomes import InjectionResult


def make_result(kernel, function, byte_offset=0, bit=6, **kw):
    info = next(f for f in kernel.functions if f.name == function)
    fields = dict(campaign="A", function=function,
                  subsystem=info.subsystem, addr=info.start,
                  byte_offset=byte_offset, bit=bit, mnemonic="push",
                  workload="syscall", activated=True,
                  outcome="crash_dumped", crash_cause="gpf")
    fields.update(kw)
    return InjectionResult(**fields)


class TestCaseStudy:
    def test_before_after_differ(self, kernel):
        result = make_result(kernel, "schedule")
        case = case_study(kernel, result)
        assert case["before"] != case["after"]
        assert case["function"] == "schedule"

    def test_prologue_flip_shows_push_ebp(self, kernel):
        result = make_result(kernel, "schedule", byte_offset=0, bit=3)
        case = case_study(kernel, result)
        # every MinC function starts with push %ebp
        assert "push %ebp" in case["before"][0]
        # 0x55 ^ 0x08 = 0x5d -> pop %ebp
        assert "pop %ebp" in case["after"][0]

    def test_format_contains_both_listings(self, kernel):
        result = make_result(kernel, "do_generic_file_read")
        text = format_case_study(kernel, result)
        assert "before:" in text
        assert "after bit" in text
        assert "do_generic_file_read" in text

    def test_condition_flip_renders_like_paper(self, kernel):
        """A campaign-C case renders je -> jne like Table 7 ex. 4."""
        from repro.isa.decoder import decode_all
        info = next(f for f in kernel.functions if f.name == "free_page")
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        jcc = next(i for i in decode_all(code, base=info.start)
                   if i.op == "jcc")
        offset = 1 if jcc.raw[0] == 0x0F else 0
        result = make_result(kernel, "free_page", byte_offset=offset,
                             bit=0, campaign="C", mnemonic="jcc",
                             addr=jcc.addr)
        case = case_study(kernel, result)
        before_ops = case["before"][0].split()[-2]
        after_ops = case["after"][0].split()[-2]
        assert before_ops != after_ops  # je <-> jne (or similar pair)


class TestFindCases:
    def test_selects_one_per_kind(self, kernel):
        results = [
            make_result(kernel, "schedule", outcome="not_manifested",
                        crash_cause=None, mnemonic="jcc"),
            make_result(kernel, "iget", crash_cause="null_pointer"),
            make_result(kernel, "getblk", crash_cause="null_pointer"),
            make_result(kernel, "bread", crash_cause="invalid_opcode"),
        ]
        found = find_case_studies(kernel, results)
        assert found["not_manifested_branch"].function == "schedule"
        assert found["null_pointer"].function == "iget"  # first wins
        assert found["invalid_opcode"].function == "bread"
        assert "paging_request" not in found

    def test_ignores_unactivated(self, kernel):
        results = [make_result(kernel, "iget", activated=False,
                               outcome="not_activated",
                               crash_cause=None)]
        assert find_case_studies(kernel, results) == {}
