"""Overhead regression: the recorder must stay cheap.

The acceptance bar is a <= 1.5x cycles/sec overhead for the default
channels on the golden boot + workload.  Wall-clock comparisons are
noisy, so each configuration takes the best of three runs; the bound
itself has headroom (measured overhead is ~1.1x).
"""

import time

from repro.machine.machine import Machine, build_standard_disk
from repro.tracing.ring import DEFAULT_CHANNELS

OVERHEAD_BOUND = 1.5
REPEATS = 3


def best_time(kernel, binaries, channels):
    best = None
    cycles = None
    for _ in range(REPEATS):
        machine = Machine(kernel,
                          build_standard_disk(binaries, "syscall"))
        if channels is not None:
            machine.enable_trace(channels=channels)
        start = time.perf_counter()
        result = machine.run(max_cycles=120_000_000)
        elapsed = time.perf_counter() - start
        assert result.status == "shutdown" and result.exit_code == 0
        if best is None or elapsed < best:
            best = elapsed
        cycles = result.cycles
    return best, cycles


def test_default_channels_within_overhead_bound(kernel, binaries):
    untraced_s, untraced_cycles = best_time(kernel, binaries, None)
    traced_s, traced_cycles = best_time(kernel, binaries,
                                        DEFAULT_CHANNELS)
    # the traced run is cycle-identical, so the cps ratio is the
    # wall-clock ratio
    assert traced_cycles == untraced_cycles
    ratio = traced_s / untraced_s
    assert ratio <= OVERHEAD_BOUND, (
        "flight recorder overhead %.2fx exceeds %.1fx"
        % (ratio, OVERHEAD_BOUND))
