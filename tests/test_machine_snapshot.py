"""Machine snapshot/clone: must be indistinguishable from a fresh boot."""

from repro.machine.machine import Machine, build_standard_disk


class TestSnapshot:
    def test_clone_is_bit_identical(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        machine = Machine(kernel, disk)
        machine.run_until_console("INIT: starting workload")
        snapshot = machine.snapshot()
        original = machine.run(max_cycles=60_000_000)
        clone_result = snapshot.clone().run(max_cycles=60_000_000)
        assert clone_result.console == original.console
        assert clone_result.cycles == original.cycles
        assert clone_result.instret == original.instret
        assert clone_result.disk_image == original.disk_image

    def test_clones_are_independent(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        machine = Machine(kernel, disk)
        machine.run_until_console("INIT: starting workload")
        snapshot = machine.snapshot()
        first = snapshot.clone()
        second = snapshot.clone()
        # mutate the first clone's memory; second must be unaffected
        first.bus.phys_write(0x200000, 4, 0xDEAD)
        assert second.bus.phys_read(0x200000, 4) != 0xDEAD \
            or snapshot.ram[0x200000:0x200004] \
            == second.bus.ram[0x200000:0x200004]
        result = second.run(max_cycles=60_000_000)
        assert result.status == "shutdown"

    def test_clone_supports_injection(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        machine = Machine(kernel, disk)
        machine.run_until_console("INIT: starting workload")
        snapshot = machine.snapshot()
        clone = snapshot.clone()
        target = kernel.symbols["do_system_call"]
        hits = []
        clone.arm_breakpoint(target, lambda m: hits.append(m.cpu.cycles))
        clone.run(max_cycles=60_000_000)
        assert len(hits) == 1
