"""Kernel resource-limit behaviour: fd table, task table, pipes, disk."""

from repro.machine.disk import read_file
from tests.helpers import USER_PRELUDE, run_user_program


def run_prog(kernel, binaries, body, **kw):
    result = run_user_program(kernel, binaries, USER_PRELUDE + body, **kw)
    assert result.status == "shutdown", result.console
    return result


class TestFdLimits:
    def test_fd_table_exhaustion_is_emfile(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int i;
            int fd = 0;
            begin();                /* consumes fds 0,1,2 */
            for (i = 0; i < 10 && fd >= 0; i++)
                fd = dup(0);
            printn(fd);
            reboot(0);
        }
        """)
        assert "-24" in result.console  # -EMFILE

    def test_close_releases_slots(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int i;
            int fd;
            begin();
            for (i = 0; i < 40; i++) {
                fd = dup(0);
                if (fd < 0) {
                    print("LEAK\n");
                    reboot(1);
                }
                close(fd);
            }
            print("NO LEAK\n");
            reboot(0);
        }
        """)
        assert "NO LEAK" in result.console


class TestTaskLimits:
    def test_fork_bomb_hits_eagain_then_recovers(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int pids[8];
            int n = 0;
            int status;
            int pid;
            begin();
            for (;;) {
                pid = fork();
                if (pid == 0) {
                    /* children block forever on an empty pipe-less
                       read; simpler: spin on yield until killed */
                    for (;;)
                        sched_yield();
                }
                if (pid < 0)
                    break;
                pids[n] = pid;
                n++;
                if (n >= 8)
                    break;
            }
            printn(pid);            /* last fork result: -EAGAIN */
            print(" after ");
            printn(n);
            print(" forks\n");
            while (n > 0) {
                n--;
                kill(pids[n], 9);
            }
            status = 0;
            while (wait(&status) > 0)
                ;
            pid = fork();           /* slots recycled */
            if (pid == 0)
                exit(0);
            wait(&status);
            print("recovered\n");
            reboot(0);
        }
        """, max_cycles=200_000_000)
        assert "-11 after" in result.console  # -EAGAIN
        assert "recovered" in result.console


class TestDiskLimits:
    def test_indirect_blocks_extend_files_past_11(self, kernel,
                                                  binaries):
        result = run_prog(kernel, binaries, r"""
        int buf[256];
        int main() {
            int fd;
            int i;
            int got;
            int sum = 0;
            begin();
            fd = creat("/var/big.dat");
            for (i = 0; i < 20; i++) {
                buf[0] = i * 7;
                if (write(fd, buf, 1024) != 1024) {
                    print("WRITE FAIL\n");
                    reboot(1);
                }
            }
            close(fd);
            fd = open("/var/big.dat");
            lseek(fd, 15 * 1024, 0);    /* inside the indirect region */
            got = read(fd, buf, 1024);
            if (got == 1024)
                sum = buf[0];
            printn(sum);
            print("\n");
            close(fd);
            unlink("/var/big.dat");
            sync();
            reboot(0);
        }
        """, max_cycles=200_000_000)
        assert str(15 * 7) in result.console
        from repro.machine.disk import fsck
        assert fsck(result.disk_image).status == "clean"

    def test_file_growth_beyond_indirect_limit_is_efbig(self, kernel,
                                                        binaries):
        result = run_prog(kernel, binaries, r"""
        int buf[256];
        int main() {
            int fd;
            int i;
            int got = 0;
            begin();
            fd = creat("/var/big.dat");
            for (i = 0; i < 70 && got >= 0; i++)
                got = write(fd, buf, 4096);   /* 4 blocks per call */
            printn(got);
            print("\n");
            close(fd);
            unlink("/var/big.dat");
            reboot(0);
        }
        """, max_cycles=400_000_000)
        assert "-27" in result.console  # -EFBIG past 267 blocks

    def test_unlink_frees_blocks_for_reuse(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int buf[256];
        int main() {
            int round;
            int fd;
            int j;
            begin();
            for (round = 0; round < 8; round++) {
                fd = creat("/var/cycle.dat");
                for (j = 0; j < 10; j++)
                    if (write(fd, buf, 1024) != 1024) {
                        print("ENOSPC-EARLY\n");
                        reboot(1);
                    }
                close(fd);
                unlink("/var/cycle.dat");
            }
            print("CYCLED OK\n");
            sync();
            reboot(0);
        }
        """, max_cycles=200_000_000)
        assert "CYCLED OK" in result.console

    def test_written_data_survives_via_host_fsck(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int fd;
            begin();
            fd = creat("/var/keep.txt");
            write(fd, "0123456789abcdef", 16);
            close(fd);
            sync();
            reboot(0);
        }
        """)
        from repro.machine.disk import fsck
        assert read_file(result.disk_image, "/var/keep.txt") \
            == b"0123456789abcdef"
        assert fsck(result.disk_image).status == "clean"


class TestPipeEdges:
    def test_write_to_pipe_without_reader_epipe(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int fds[2];
        int buf[2];
        int main() {
            begin();
            pipe(fds);
            close(fds[0]);
            printn(write(fds[1], buf, 4));
            reboot(0);
        }
        """)
        assert "-32" in result.console  # -EPIPE

    def test_lseek_on_pipe_espipe(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int fds[2];
        int main() {
            begin();
            pipe(fds);
            printn(lseek(fds[0], 0, 0));
            reboot(0);
        }
        """)
        assert "-29" in result.console  # -ESPIPE
