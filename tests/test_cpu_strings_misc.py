"""String instructions, stack ops, debug registers, misc instructions."""

import pytest

from repro.cpu.cpu import CPU
from repro.cpu.memory import MemoryBus
from repro.isa.assembler import assemble
from tests.helpers import FlatMachine, run_fragment


class TestStringOps:
    def test_rep_movsd_copies(self):
        body = """
    mov esi, src
    mov edi, dst
    mov ecx, 4
    cld
    rep movsd
    mov eax, [dst+12]
    jmp done
.align 4
.global src
    .long 10, 20, 30, 40
.global dst
    .long 0, 0, 0, 0
done:
        """
        assert run_fragment(body) == 40

    def test_rep_stosb_fills(self):
        body = """
    mov edi, buf
    mov eax, 0x41
    mov ecx, 8
    cld
    rep stosb
    movzx eax, byte [buf+7]
    jmp done
.align 4
.global buf
    .space 16
done:
        """
        assert run_fragment(body) == 0x41

    def test_movs_direction_flag(self):
        body = """
    mov esi, src+4
    mov edi, dst+4
    mov ecx, 2
    std
    rep movsd
    cld
    mov eax, [dst]
    jmp done
.align 4
.global src
    .long 7, 9
.global dst
    .long 0, 0
done:
        """
        assert run_fragment(body) == 7

    def test_repne_scasb_finds_byte(self):
        body = """
    mov edi, text
    mov eax, 'X'
    mov ecx, 16
    cld
    repne scasb
    mov eax, 16
    sub eax, ecx
    jmp done
.global text
    .asciz "abcXdef"
done:
        """
        # X at index 3; scasb stops after matching -> 16-ecx = 4
        assert run_fragment(body) == 4

    def test_rep_with_zero_count_is_nop(self):
        body = """
    mov edi, 0x99000000      ; would fault if executed
    xor ecx, ecx
    rep stosd
    mov eax, 123
        """
        assert run_fragment(body) == 123

    def test_cmpsb_sets_flags(self):
        body = """
    mov esi, a
    mov edi, b
    cmpsb
    setb al
    movzx eax, al
    jmp done
.global a
    .byte 1
.global b
    .byte 2
done:
        """
        assert run_fragment(body) == 1


class TestStackOps:
    def test_pusha_popa_roundtrip(self):
        body = """
    mov eax, 1
    mov ecx, 2
    mov edx, 3
    mov ebx, 4
    pusha
    mov eax, 0
    mov ebx, 0
    popa
    shl eax, 4
    or eax, ebx
        """
        assert run_fragment(body) == 0x14

    def test_enter_leave(self):
        body = """
    mov ebp, 0x1234
    enter 16, 0
    mov eax, esp
    mov ecx, ebp
    sub ecx, eax        ; frame size
    leave
    mov eax, ecx
        """
        assert run_fragment(body) == 16

    def test_pushf_popf_preserves_flags(self):
        body = """
    stc
    pushf
    clc
    popf
    setb al
    movzx eax, al
        """
        assert run_fragment(body) == 1

    def test_push_pop_memory_operand(self):
        body = """
    push dword [value]
    pop dword [copy]
    mov eax, [copy]
    jmp done
.align 4
.global value
    .long 777
.global copy
    .long 0
done:
        """
        assert run_fragment(body) == 777


class TestDebugRegisters:
    def test_breakpoint_fires_once(self):
        source = """
_start:
    mov esp, 0x8000
    mov ecx, 3
loop:
    nop
target:
    nop
    dec ecx
    jne loop
    mov ebx, 0x200100
    mov [ebx], 42
    hlt
"""
        machine = FlatMachine(source)
        hits = []

        def hook(cpu, index):
            hits.append(cpu.cycles)
            cpu.write_dr(7, 0)  # one-shot disarm

        machine.cpu.write_dr(0, machine.symbol("target"))
        machine.cpu.write_dr(7, 1)
        machine.cpu.on_breakpoint = hook
        assert machine.run() == 42
        assert len(hits) == 1

    def test_mov_dr_from_guest_code(self):
        body = """
    mov eax, 0x1234
    mov dr0, eax
    mov eax, dr0
        """
        assert run_fragment(body) == 0x1234

    def test_dr7_gates_breakpoints(self):
        machine = FlatMachine("_start:\nnop\nmov ebx, 0x200100\n"
                              "mov [ebx], 5\nhlt\n")
        machine.cpu.write_dr(0, 0x1000)
        # enable bit NOT set -> no hook call
        machine.cpu.on_breakpoint = lambda *a: (_ for _ in ()).throw(
            AssertionError("must not fire"))
        assert machine.run() == 5


class TestMiscInstructions:
    def test_xlat(self):
        body = """
    mov ebx, table
    mov eax, 2
    xlat
    movzx eax, al
    jmp done
.global table
    .byte 10, 20, 30, 40
done:
        """
        assert run_fragment(body) == 30

    def test_rdtsc_monotonic(self):
        body = """
    rdtsc
    mov ecx, eax
    nop
    nop
    rdtsc
    sub eax, ecx
        """
        assert run_fragment(body) > 0

    def test_cpuid_vendor(self):
        body = """
    xor eax, eax
    cpuid
    mov eax, ebx
        """
        assert run_fragment(body) == 0x756E6547  # "Genu"

    def test_int3_without_idt_triple_faults(self):
        from repro.cpu.traps import TripleFault
        program = assemble("_start:\nint3\n", base=0x1000)
        bus = MemoryBus(0x10000)
        bus.phys_write_bytes(0x1000, program.code)
        cpu = CPU(bus)
        cpu.eip = 0x1000
        with pytest.raises(TripleFault):
            cpu.run(1000)

    def test_decode_cache_sees_self_modification(self):
        # Overwrite an upcoming instruction; the new bytes must execute.
        body = """
    mov eax, 0
    movb [patch], 0x42          ; inc edx -> inc eax? (0x42 = inc edx)
patch:
    nop
    nop
        """
        # 0x42 is "inc edx"; verify edx got incremented via a second run
        source = """
_start:
    mov esp, 0x8000
    xor edx, edx
    movb [patch], 0x42
patch:
    nop
    mov eax, edx
    mov ebx, 0x200100
    mov [ebx], eax
    hlt
"""
        machine = FlatMachine(source)
        assert machine.run() == 1

    def test_segment_register_load_validates(self):
        from repro.cpu.traps import TripleFault
        source = "_start:\nmov eax, 0x1234\nmov ds, eax\n"
        program = assemble(source, base=0x1000)
        bus = MemoryBus(0x10000)
        bus.phys_write_bytes(0x1000, program.code)
        cpu = CPU(bus)
        cpu.eip = 0x1000
        with pytest.raises(TripleFault):  # GPF with no IDT
            cpu.run(1000)

    def test_valid_segment_load_accepted(self):
        body = """
    mov eax, 0x2B
    mov ds, eax
    mov eax, ds
        """
        assert run_fragment(body) == 0x2B
