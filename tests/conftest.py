"""Shared fixtures: expensive artifacts are built once per session."""

import pytest

from repro.kernel.build import build_kernel
from repro.userland.build import build_all_programs


@pytest.fixture(scope="session")
def kernel():
    return build_kernel()


@pytest.fixture(scope="session")
def binaries():
    return build_all_programs()


@pytest.fixture(scope="session")
def profile(kernel, binaries):
    from repro.profiling.sampler import profile_kernel
    from repro.userland.programs import WORKLOADS
    return profile_kernel(kernel, binaries, WORKLOADS)


@pytest.fixture(scope="session")
def harness(kernel, binaries, profile):
    from repro.injection.runner import InjectionHarness
    return InjectionHarness(kernel, binaries, profile)


@pytest.fixture(scope="session")
def traced_harness(kernel, binaries, profile):
    from repro.injection.runner import InjectionHarness
    return InjectionHarness(kernel, binaries, profile, trace=True)


@pytest.fixture(scope="session")
def translated_harness(kernel, binaries, profile):
    from repro.injection.runner import InjectionHarness
    return InjectionHarness(kernel, binaries, profile, translate=True)


@pytest.fixture(scope="session")
def retry_harness(kernel, binaries, profile):
    from repro.injection.runner import InjectionHarness
    return InjectionHarness(kernel, binaries, profile, disk_retries=2)
