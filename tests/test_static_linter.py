"""Image linter plumbing: stack-depth noreturn, output formats, rules."""

import json

import pytest

from repro.isa.assembler import assemble
from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.stackdepth import analyze_stack

BASE = 0x1000

#: f pushes once, calls the non-returning g, then (textually) pops
#: three times — dead code that would drive the depth negative if the
#: fixpoint flowed past the call.
_NORETURN_PROG = """.func g kernel
g:
  jmp g
.endfunc
.func f kernel
f:
  push eax
  call g
  pop eax
  pop eax
  pop eax
  ret
.endfunc"""


def _noreturn_case():
    prog = assemble(_NORETURN_PROG, base=BASE)
    f_info = next(i for i in prog.functions if i.name == "f")
    g_info = next(i for i in prog.functions if i.name == "g")
    return build_cfg(prog, f_info), g_info


class TestStackDepthNoreturn:
    def test_call_into_noreturn_ends_the_path(self):
        cfg, g_info = _noreturn_case()
        result = analyze_stack(cfg, noreturn_targets=(g_info.start,))
        assert result.analyzable
        assert result.findings == []

    def test_without_the_hint_the_dead_tail_misfires(self):
        # The same function analyzed flat: the post-call pops run the
        # depth negative — the exact false positive the noreturn
        # handling removes.
        cfg, _ = _noreturn_case()
        result = analyze_stack(cfg)
        assert any("below function entry" in message
                   for _, message in result.findings)

    def test_kernel_linter_stays_clean_with_noreturn_model(self, kernel):
        from repro.staticanalysis.linter import KernelLinter
        linter = KernelLinter(kernel, rules=("stack-imbalance",))
        assert linter.lint_image(kernel.functions) == []


@pytest.fixture()
def kerncheck(kernel, monkeypatch):
    import repro.tools.kerncheck as kerncheck
    monkeypatch.setattr(kerncheck, "build_kernel", lambda: kernel)
    return kerncheck


class TestKerncheckFormats:
    def test_text_default_reports_summary(self, kerncheck, capsys):
        assert kerncheck.main(["--subsystem", "ipc"]) == 0
        out = capsys.readouterr().out
        assert "kerncheck:" in out
        assert "finding(s)" in out

    def test_json_format_is_machine_readable(self, kerncheck, capsys):
        assert kerncheck.main(["--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "kerncheck"
        assert report["finding_count"] == 0
        assert report["findings"] == []
        assert report["functions_linted"] > 100

    def test_json_alias_flag(self, kerncheck, capsys):
        assert kerncheck.main(["--json", "--subsystem", "ipc"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "kerncheck"

    def test_sarif_format_is_valid_2_1_0(self, kerncheck, capsys):
        assert kerncheck.main(["--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "kerncheck"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert run["results"] == []

    def test_sarif_encodes_findings_with_locations(self, kerncheck):
        from repro.staticanalysis.linter import LintFinding
        finding = LintFinding("stack-imbalance", "f", 0x1234, "boom")
        log = kerncheck.findings_sarif([finding])
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "stack-imbalance"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "kernel://f"
        assert location["region"]["byteOffset"] == 0x1234

    def test_optional_rule_runs_only_when_named(self, kerncheck,
                                                capsys, kernel):
        # propagation-leak reports real facts, not violations, so it
        # must never contribute to the default run's exit status.
        assert kerncheck.main(["--format", "json"]) == 0
        capsys.readouterr()
        status = kerncheck.main(["--rule", "propagation-leak",
                                 "--format", "json", "--subsystem",
                                 "fs"])
        report = json.loads(capsys.readouterr().out)
        assert status == min(report["finding_count"], 125)
        assert all(f["rule"] == "propagation-leak"
                   for f in report["findings"])

    def test_text_output_is_sorted_by_rule_then_addr(self, kerncheck,
                                                     capsys,
                                                     monkeypatch):
        # CI diffs kerncheck text artifacts, so the line order must
        # not depend on linter-internal iteration order.
        from repro.staticanalysis.linter import LintFinding
        unsorted_findings = [
            LintFinding("stack-imbalance", "g", 0x2000, "m1"),
            LintFinding("fall-off-end", "h", 0x3000, "m2"),
            LintFinding("stack-imbalance", "f", 0x1000, "m3"),
            LintFinding("fall-off-end", "h", 0x0100, "m4"),
        ]

        class StubLinter:
            def __init__(self, kernel, rules=None):
                pass

            def lint_image(self, functions):
                return list(unsorted_findings)

        monkeypatch.setattr(kerncheck, "KernelLinter", StubLinter)
        assert kerncheck.main(["--quiet"]) == 4
        lines = capsys.readouterr().out.splitlines()
        keys = []
        for finding in sorted(unsorted_findings,
                              key=lambda f: (f.rule, f.addr,
                                             f.function)):
            keys.append(finding.format(None))
        assert lines == keys
