"""MinC compiler tests: compile programs and execute them on the CPU."""

import pytest

from repro.cc import CompileError, compile_single
from repro.cc.lexer import LexError, tokenize
from repro.cc.parser import ParseError, parse
from tests.helpers import FlatMachine

HARNESS = """
_start:
    mov esp, 0x8000
    call main
    mov ebx, 0x200100
    mov [ebx], eax
    hlt
%s
.align 4096
%s
"""


def run_minc(source, max_cycles=2_000_000):
    """Compile MinC, run main(), return its result."""
    unit = compile_single(source)
    machine = FlatMachine(HARNESS % (unit.text, unit.data))
    return machine.run(max_cycles=max_cycles)


class TestExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 - 3 - 2", 5),
        ("100 / 7", 14),
        ("100 % 7", 2),
        ("-100 / 7", (-14) & 0xFFFFFFFF),
        ("1 << 10", 1024),
        ("0x80000000 >> 31", 1),        # >> is logical in MinC
        ("asr(0x80000000, 31)", 0xFFFFFFFF),
        ("5 & 3", 1),
        ("5 | 3", 7),
        ("5 ^ 3", 6),
        ("~0", 0xFFFFFFFF),
        ("!5", 0),
        ("!0", 1),
        ("3 < 5", 1),
        ("5 < 3", 0),
        ("-1 < 1", 1),                  # signed comparison
        ("ult(1, -1)", 1),              # -1 is big unsigned
        ("ugt(-1, 1)", 1),
        ("uge(5, 5)", 1),
        ("ule(5, 5)", 1),
        ("udiv(0xFFFFFFFE, 2)", 0x7FFFFFFF),
        ("umod(0xFFFFFFFF, 10)", 5),
        ("1 && 2", 1),
        ("1 && 0", 0),
        ("0 || 3", 1),
        ("0 || 0", 0),
        ("1 ? 42 : 7", 42),
        ("0 ? 42 : 7", 7),
        ("'A'", 65),
    ])
    def test_constant_expressions(self, expr, expected):
        # via a runtime variable so nothing constant-folds away entirely
        source = "int main() { int x = %s; return x; }" % expr
        assert run_minc(source) == expected

    def test_runtime_short_circuit(self):
        source = """
        int calls = 0;
        int bump() { calls++; return 0; }
        int main() {
            int a = 0;
            if (a && bump()) ;
            if (1 || bump()) ;
            return calls;
        }
        """
        assert run_minc(source) == 0

    def test_comma_operator(self):
        source = "int main() { int x; x = (1, 2, 3); return x; }"
        assert run_minc(source) == 3

    def test_compound_assignment(self):
        source = """
        int main() {
            int x = 10;
            x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 3; x |= 1;
            x ^= 2; x &= 0xff;
            return x;
        }
        """
        x = 10
        x += 5; x -= 3; x *= 2; x //= 4; x %= 4; x <<= 3; x |= 1
        x ^= 2; x &= 0xFF
        assert run_minc(source) == x

    def test_pre_post_incdec(self):
        source = """
        int main() {
            int x = 5;
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a * 1000 + b * 100 + c * 10 + d;
        }
        """
        assert run_minc(source) == 5 * 1000 + 7 * 100 + 7 * 10 + 5


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
        int classify(n) {
            if (n < 0) return 1;
            else if (n == 0) return 2;
            else return 3;
        }
        int main() {
            return classify(-5) * 100 + classify(0) * 10 + classify(9);
        }
        """
        assert run_minc(source) == 123

    def test_while_and_break_continue(self):
        source = """
        int main() {
            int i = 0;
            int sum = 0;
            while (1) {
                i++;
                if (i > 10) break;
                if (i % 2) continue;
                sum += i;
            }
            return sum;     /* 2+4+6+8+10 */
        }
        """
        assert run_minc(source) == 30

    def test_do_while(self):
        source = """
        int main() {
            int n = 0;
            do { n++; } while (n < 5);
            return n;
        }
        """
        assert run_minc(source) == 5

    def test_for_loop(self):
        source = """
        int main() {
            int sum = 0;
            int i;
            for (i = 1; i <= 10; i++) sum += i;
            return sum;
        }
        """
        assert run_minc(source) == 55

    def test_nested_loops(self):
        source = """
        int main() {
            int total = 0;
            int i;
            int j;
            for (i = 0; i < 5; i++)
                for (j = 0; j < i; j++)
                    total++;
            return total;
        }
        """
        assert run_minc(source) == 10

    def test_recursion(self):
        source = """
        int fact(n) { return n < 2 ? 1 : n * fact(n - 1); }
        int main() { return fact(7); }
        """
        assert run_minc(source) == 5040


class TestDataAccess:
    def test_globals_and_arrays(self):
        source = """
        int counter = 3;
        int table[10];
        int main() {
            int i;
            for (i = 0; i < 10; i++) table[i] = i * i;
            counter += table[7];
            return counter;
        }
        """
        assert run_minc(source) == 3 + 49

    def test_global_initializer_list(self):
        source = """
        int primes[] = {2, 3, 5, 7, 11};
        int main() { return primes[0] + primes[4]; }
        """
        assert run_minc(source) == 13

    def test_pointers_and_addrof(self):
        source = """
        int value = 7;
        int main() {
            int local = 5;
            int p = &value;
            int q = &local;
            *p = *p + 1;
            *q = *q + 2;
            return value * 10 + local;
        }
        """
        assert run_minc(source) == 87

    def test_local_array_and_index_lvalue(self):
        source = """
        int main() {
            int a[4];
            a[0] = 1;
            a[1] = a[0] + 1;
            a[2] = a[1] * 3;
            a[3] = a[2] - a[0];
            return a[3];
        }
        """
        assert run_minc(source) == 5

    def test_byte_access(self):
        source = """
        int buf[2];
        int main() {
            stb(buf, 0x11);
            stb(buf + 1, 0x22);
            return ldb(buf) + ldb(buf + 1);
        }
        """
        assert run_minc(source) == 0x33

    def test_string_literal(self):
        source = """
        int main() {
            int s = "AB";
            return ldb(s) * 256 + ldb(s + 1);
        }
        """
        assert run_minc(source) == ord("A") * 256 + ord("B")

    def test_function_pointer_call(self):
        source = """
        int double_(x) { return x * 2; }
        int triple(x) { return x * 3; }
        int ops[] = {double_, triple};
        int main() {
            int f = ops[1];
            return f(7);
        }
        """
        assert run_minc(source) == 21

    def test_const_decl(self):
        source = """
        const SIZE = 4 * 3;
        int main() { return SIZE + 1; }
        """
        assert run_minc(source) == 13


class TestBuiltins:
    def test_bug_traps(self):
        from repro.cpu.traps import TripleFault
        source = "int main() { BUG(); return 0; }"
        unit = compile_single(source)
        machine = FlatMachine(HARNESS % (unit.text, unit.data))
        with pytest.raises(TripleFault):   # no IDT -> reset
            machine.cpu.run(10_000)

    def test_rep_movsd(self):
        source = """
        int src[4] = {1, 2, 3, 4};
        int dst[4];
        int main() {
            rep_movsd(dst, src, 4);
            return dst[0] + dst[3];
        }
        """
        assert run_minc(source) == 5

    def test_ret_addr_nonzero(self):
        source = """
        int probe() { return ret_addr(); }
        int main() { return probe() != 0; }
        """
        assert run_minc(source) == 1


class TestErrors:
    def test_undefined_name(self):
        with pytest.raises(CompileError):
            compile_single("int main() { return missing; }")

    def test_parse_error(self):
        with pytest.raises((ParseError, CompileError)):
            compile_single("int main() { if }")

    def test_lex_error(self):
        with pytest.raises(LexError):
            tokenize("int main() { @ }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_single("int main() { break; }")

    def test_duplicate_function(self):
        with pytest.raises(CompileError):
            compile_single("int f() { return 1; } int f() { return 2; }")

    def test_nonconstant_global_init(self):
        with pytest.raises(CompileError):
            compile_single("int g() {return 1;} int x = g(); ")

    def test_parse_smoke_ast(self):
        program = parse("int f(a) { return a + 1; }")
        assert len(program.decls) == 1
