"""The distributed campaign fabric.

Sharding is content-addressed and deterministic; merged shard journals
must be bit-identical to the one-host serial run no matter how the
shards executed — in order, in parallel, overlapping, retried after a
SIGKILL, or torn mid-write.  The boot-snapshot store must eliminate
per-process kernel boots without perturbing a single result.
"""

import json
import os
import signal
import time

import pytest

from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.engine import CampaignJournal, plan_fingerprint
from repro.injection.fabric import (
    FabricConfig,
    FabricCoordinator,
    MergeError,
    ShardJournal,
    SnapshotStore,
    kernel_fingerprint,
    merge_shard_journals,
    plan_shards,
    read_heartbeat,
    run_shard,
    shard_fingerprint,
    write_heartbeat,
)
from repro.injection.runner import InjectionHarness

#: The deterministic slice every fabric test shards: an fs-heavy
#: campaign-C plan, small enough that running it a handful of ways
#: stays cheap.
SEED = 7
STRIDE = 3
MAX_SPECS = 6
CAMPAIGN = "C"


@pytest.fixture(scope="module")
def specs(harness):
    functions = select_targets(harness.kernel, harness.profile,
                               CAMPAIGN)
    planned = plan_campaign(harness.kernel, CAMPAIGN, functions,
                            seed=SEED, byte_stride=STRIDE)[:MAX_SPECS]
    for spec in planned:
        harness.assign_workload(spec)
    return planned


@pytest.fixture(scope="module")
def plan_fp(specs):
    return plan_fingerprint(CAMPAIGN, specs, SEED, STRIDE)


@pytest.fixture(scope="module")
def serial(harness, specs):
    """Reference serial execution (list of result dicts)."""
    from repro.injection.engine import CampaignEngine
    results, _ = CampaignEngine(harness).execute(
        CAMPAIGN, specs, SEED, STRIDE, grade=False)
    return [r.to_dict() for r in results]


def shard_paths(tmp_path, shards):
    return {s.index: str(tmp_path / ("shard_%d.jsonl" % s.index))
            for s in shards}


def run_all_shards(harness, specs, shards, paths, grade=False):
    for shard in shards:
        run_shard(harness, CAMPAIGN, specs, SEED, STRIDE, shard,
                  paths[shard.index], grade=grade)


class TestShardPlanning:
    def test_shards_partition_the_plan(self, plan_fp):
        shards = plan_shards(plan_fp, 10, 3)
        indices = sorted(i for s in shards for i in s.indices)
        assert indices == list(range(10))
        assert [len(s.indices) for s in shards] == [4, 3, 3]

    def test_fingerprints_are_content_addressed(self, plan_fp):
        shards = plan_shards(plan_fp, 10, 3)
        fps = {s.fingerprint for s in shards}
        assert len(fps) == 3                    # distinct per index
        assert plan_fp not in fps               # never the plan's own
        again = plan_shards(plan_fp, 10, 3)
        assert [s.fingerprint for s in again] \
            == [s.fingerprint for s in shards]  # deterministic
        assert shard_fingerprint(plan_fp, 1, 3) \
            == shards[1].fingerprint
        assert shard_fingerprint(plan_fp, 1, 4) \
            != shards[1].fingerprint            # count is bound in

    def test_oversharded_plans_have_empty_shards(self, plan_fp):
        shards = plan_shards(plan_fp, 2, 5)
        assert [len(s.indices) for s in shards] == [1, 1, 0, 0, 0]

    def test_shard_count_must_be_positive(self, plan_fp):
        with pytest.raises(ValueError):
            plan_shards(plan_fp, 10, 0)


class TestMergeEquivalence:
    @pytest.mark.parametrize("count", [1, 2, 5])
    def test_merge_of_split_equals_serial(self, harness, specs,
                                          plan_fp, serial, tmp_path,
                                          count):
        """The property the whole fabric rests on:
        merge(split(plan, N)) == serial, bit for bit."""
        shards = plan_shards(plan_fp, len(specs), count)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        merged = merge_shard_journals(sorted(paths.values()))
        assert merged.plan_fingerprint == plan_fp
        assert merged.complete
        assert merged.replayed == 0
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_overlapping_shard_attempts_dedup(self, harness, specs,
                                              plan_fp, serial,
                                              tmp_path):
        """Two complete attempts of the same shard (a retried runner
        whose first journal survived) merge exactly-once."""
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        replay_path = str(tmp_path / "shard_0_retry.jsonl")
        run_shard(harness, CAMPAIGN, specs, SEED, STRIDE, shards[0],
                  replay_path, grade=False)
        merged = merge_shard_journals(sorted(paths.values())
                                      + [replay_path])
        assert merged.replayed == len(shards[0].indices)
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_replayed_records_in_one_journal_dedup(self, harness,
                                                   specs, plan_fp,
                                                   serial, tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        lines = open(paths[1]).read().splitlines()
        with open(paths[1], "a") as fh:
            fh.write(lines[1] + "\n")           # replay one record
        merged = merge_shard_journals(sorted(paths.values()))
        assert merged.replayed == 1
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_torn_trailing_line_is_dropped(self, harness, specs,
                                           plan_fp, serial, tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        with open(paths[0], "a") as fh:
            fh.write('{"type": "result", "index": 4, "res')
        merged = merge_shard_journals(sorted(paths.values()))
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_incomplete_merge_reports_missing(self, harness, specs,
                                              plan_fp, tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_shard(harness, CAMPAIGN, specs, SEED, STRIDE, shards[0],
                  paths[0], grade=False)
        merged = merge_shard_journals([paths[0]])
        assert not merged.complete
        assert merged.missing == list(shards[1].indices)
        with pytest.raises(MergeError, match="missing"):
            merged.ordered()

    def test_empty_and_absent_journals_are_tolerated(self, harness,
                                                     specs, plan_fp,
                                                     serial, tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        absent = str(tmp_path / "never-written.jsonl")
        merged = merge_shard_journals(sorted(paths.values())
                                      + [empty, absent])
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_oversharded_header_only_journals_merge(self, harness,
                                                    specs, plan_fp,
                                                    serial, tmp_path):
        count = len(specs) + 2          # the last two shards are empty
        shards = plan_shards(plan_fp, len(specs), count)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        assert len(open(paths[count - 1]).read().splitlines()) == 1
        merged = merge_shard_journals(sorted(paths.values()))
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_plain_campaign_journal_merges_as_one_shard(
            self, harness, specs, plan_fp, serial, tmp_path):
        from repro.injection.engine import CampaignEngine, EngineConfig
        path = str(tmp_path / "serial.jsonl")
        CampaignEngine(harness, EngineConfig(journal_path=path)) \
            .execute(CAMPAIGN, specs, SEED, STRIDE, grade=False)
        merged = merge_shard_journals([path])
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_canonical_merged_journal_is_loadable(self, harness, specs,
                                                  plan_fp, serial,
                                                  tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        merged = merge_shard_journals(sorted(paths.values()))
        out = str(tmp_path / "canonical.jsonl")
        merged.write_journal(out)
        loaded = CampaignJournal(out).load(plan_fp)
        assert sorted(loaded) == list(range(len(specs)))
        assert [loaded[i].to_dict() for i in range(len(specs))] \
            == serial


class TestMergeRejection:
    def test_foreign_plan_is_rejected(self, harness, specs, plan_fp,
                                      tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        foreign_fp = plan_fingerprint(CAMPAIGN, specs, SEED + 1,
                                      STRIDE)
        foreign = str(tmp_path / "foreign.jsonl")
        journal = ShardJournal(foreign,
                               plan_shards(foreign_fp, len(specs),
                                           2)[0])
        journal.start("sub", CAMPAIGN, SEED + 1, len(specs))
        journal.close()
        with pytest.raises(MergeError, match="belongs to plan"):
            merge_shard_journals(sorted(paths.values()) + [foreign])

    def test_forged_shard_fingerprint_is_rejected(self, harness, specs,
                                                  plan_fp, tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        lines = open(paths[0]).read().splitlines()
        header = json.loads(lines[0])
        header["shard_index"] = 1       # claim another slice
        with open(paths[0], "w") as fh:
            fh.write("\n".join([json.dumps(header)] + lines[1:])
                     + "\n")
        with pytest.raises(MergeError, match="does not derive"):
            merge_shard_journals(sorted(paths.values()))

    def test_record_outside_shard_slice_is_rejected(self, harness,
                                                    specs, plan_fp,
                                                    tmp_path):
        shards = plan_shards(plan_fp, len(specs), 2)
        paths = shard_paths(tmp_path, shards)
        run_all_shards(harness, specs, shards, paths)
        lines = open(paths[0]).read().splitlines()
        record = json.loads(lines[1])
        record["index"] = 1             # shard 0/2 owns even indices
        with open(paths[0], "a") as fh:
            fh.write(json.dumps(record) + "\n")
        with pytest.raises(MergeError, match="does not belong"):
            merge_shard_journals(sorted(paths.values()))

    def test_non_journal_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "noise.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "telemetry"}) + "\n")
        with pytest.raises(MergeError, match="not a campaign journal"):
            merge_shard_journals([path])

    def test_nothing_to_merge_is_an_error(self, tmp_path):
        with pytest.raises(MergeError, match="no journals"):
            merge_shard_journals([str(tmp_path / "absent.jsonl")])


class TestShardJournalResume:
    def test_killed_shard_resumes_its_own_journal(self, harness, specs,
                                                  plan_fp, serial,
                                                  tmp_path):
        """A shard SIGKILLed mid-run (torn record included) is re-run
        against the same journal and only finishes the remainder."""
        import multiprocessing
        shard = plan_shards(plan_fp, len(specs), 2)[0]
        path = str(tmp_path / "shard_0.jsonl")

        def doomed():
            def tear(done, total, result):
                if done == 1:
                    with open(path, "a") as fh:
                        fh.write('{"type": "result", "ind')
                        fh.flush()
                    os.kill(os.getpid(), signal.SIGKILL)

            run_shard(harness, CAMPAIGN, specs, SEED, STRIDE, shard,
                      path, grade=False, progress=tear)

        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(target=doomed)
        victim.start()
        victim.join(timeout=120)
        assert victim.exitcode == -signal.SIGKILL
        results, meta = run_shard(harness, CAMPAIGN, specs, SEED,
                                  STRIDE, shard, path, grade=False)
        assert meta["resumed_results"] == 1
        other = plan_shards(plan_fp, len(specs), 2)[1]
        other_path = str(tmp_path / "shard_1.jsonl")
        run_shard(harness, CAMPAIGN, specs, SEED, STRIDE, other,
                  other_path, grade=False)
        merged = merge_shard_journals([path, other_path])
        assert [r.to_dict() for r in merged.ordered()] == serial

    def test_shard_journal_rejects_foreign_shard(self, harness, specs,
                                                 plan_fp, tmp_path):
        from repro.injection.engine import JournalMismatch
        shards = plan_shards(plan_fp, len(specs), 2)
        path = str(tmp_path / "shard.jsonl")
        run_shard(harness, CAMPAIGN, specs, SEED, STRIDE, shards[0],
                  path, grade=False)
        with pytest.raises(JournalMismatch):
            run_shard(harness, CAMPAIGN, specs, SEED, STRIDE,
                      shards[1], path, grade=False)


class TestSnapshotStore:
    def test_store_round_trip_eliminates_boots(self, kernel, binaries,
                                               profile, tmp_path):
        store = SnapshotStore(str(tmp_path / "snapshots"))
        cold = InjectionHarness(kernel, binaries, profile,
                                snapshot_store=store)
        golden = cold.golden("fstime")
        assert cold.boots == 1
        assert store.misses == 1
        warm = InjectionHarness(kernel, binaries, profile,
                                snapshot_store=store)
        thawed = warm.golden("fstime")
        assert warm.boots == 0
        assert store.hits == 1
        assert thawed.console == golden.console
        assert thawed.cycles == golden.cycles
        assert thawed.coverage == golden.coverage
        assert thawed.boot_cycles == golden.boot_cycles

    def test_warm_store_results_are_bit_identical(self, kernel,
                                                  binaries, profile,
                                                  specs, serial,
                                                  tmp_path):
        from repro.injection.engine import CampaignEngine
        store = SnapshotStore(str(tmp_path / "snapshots"))
        for label in ("cold", "warm"):
            harness = InjectionHarness(kernel, binaries, profile,
                                       snapshot_store=store)
            results, _ = CampaignEngine(harness).execute(
                CAMPAIGN, specs, SEED, STRIDE, grade=False)
            assert [r.to_dict() for r in results] == serial, label
        assert store.hits > 0

    def test_corrupt_entry_falls_back_to_boot(self, kernel, binaries,
                                              profile, tmp_path):
        store = SnapshotStore(str(tmp_path / "snapshots"))
        cold = InjectionHarness(kernel, binaries, profile,
                                snapshot_store=store)
        cold.golden("fstime")
        key = store.key(kernel, "fstime")
        with open(store._path(key), "wb") as fh:
            fh.write(b"not a pickle")
        warm = InjectionHarness(kernel, binaries, profile,
                                snapshot_store=store)
        run = warm.golden("fstime")
        assert warm.boots == 1          # silently re-booted
        assert run.result.status == "shutdown"

    def test_key_binds_kernel_and_config(self, kernel, tmp_path):
        store = SnapshotStore(str(tmp_path))
        base = store.key(kernel, "fstime")
        assert store.key(kernel, "fstime") == base
        assert store.key(kernel, "syscall") != base
        assert store.key(kernel, "fstime", recovery=True) != base
        assert store.key(kernel, "fstime", disk_retries=2) != base
        assert len(kernel_fingerprint(kernel)) == 16

    def test_constants_round_trip(self, kernel, tmp_path):
        store = SnapshotStore(str(tmp_path))
        assert store.load_constant(kernel, "crash_overhead") is None
        store.save_constant(kernel, "crash_overhead", 1234)
        assert store.load_constant(kernel, "crash_overhead") == 1234


class TestCoordinator:
    def test_pooled_run_is_bit_identical(self, harness, serial,
                                         tmp_path):
        coordinator = FabricCoordinator(harness,
                                        FabricConfig(pool=2))
        results = coordinator.run_campaign(
            CAMPAIGN, seed=SEED, byte_stride=STRIDE,
            max_specs=MAX_SPECS, shard_count=3,
            workdir=str(tmp_path / "fabric"), grade=False)
        engine = results.meta["engine"]
        assert [r.to_dict() for r in results.results] == serial
        assert engine["mode"] == "fabric"
        assert engine["worker_failures"] == 0
        assert engine["serial_completions"] == 0

    def test_chaos_sigkill_is_survived_bit_identically(self, harness,
                                                       serial,
                                                       tmp_path):
        coordinator = FabricCoordinator(
            harness, FabricConfig(pool=2, chaos_kills=1,
                                  chaos_seed=SEED))
        results = coordinator.run_campaign(
            CAMPAIGN, seed=SEED, byte_stride=STRIDE,
            max_specs=MAX_SPECS, shard_count=3,
            workdir=str(tmp_path / "fabric"), grade=False)
        engine = results.meta["engine"]
        assert engine["chaos_killed"]           # a shard really died
        assert engine["worker_failures"] >= 1
        assert engine["stolen_shards"] >= 1     # and was resumed
        assert [r.to_dict() for r in results.results] == serial

    def test_repeated_deaths_degrade_to_serial(self, harness, serial,
                                               tmp_path):
        coordinator = FabricCoordinator(
            harness, FabricConfig(pool=2, chaos_kills=3,
                                  chaos_seed=SEED,
                                  max_worker_failures=1))
        results = coordinator.run_campaign(
            CAMPAIGN, seed=SEED, byte_stride=STRIDE,
            max_specs=MAX_SPECS, shard_count=3,
            workdir=str(tmp_path / "fabric"), grade=False)
        engine = results.meta["engine"]
        assert engine["degraded"] is True
        assert [r.to_dict() for r in results.results] == serial

    def test_stalled_lease_is_revoked_and_stolen(self, harness, serial,
                                                 monkeypatch,
                                                 tmp_path):
        """A worker that stops heartbeating loses its lease; the shard
        is re-dispatched and resumes, results unchanged."""
        stall_flag = tmp_path / "stalled-once"
        parent = os.getpid()
        real = harness.run_spec

        def stalling(spec, grade=True):
            if os.getpid() != parent and not stall_flag.exists():
                stall_flag.write_text("x")
                time.sleep(60)
            return real(spec, grade=grade)

        monkeypatch.setattr(harness, "run_spec", stalling)
        coordinator = FabricCoordinator(
            harness, FabricConfig(pool=2, lease_timeout=1.5,
                                  backoff=0.0))
        results = coordinator.run_campaign(
            CAMPAIGN, seed=SEED, byte_stride=STRIDE,
            max_specs=MAX_SPECS, shard_count=2,
            workdir=str(tmp_path / "fabric"), grade=False)
        engine = results.meta["engine"]
        assert engine["stalled_leases"] >= 1
        assert engine["stolen_shards"] >= 1
        assert [r.to_dict() for r in results.results] == serial

    def test_serial_fallback_without_pool(self, harness, serial,
                                          tmp_path):
        coordinator = FabricCoordinator(harness, FabricConfig(pool=1))
        results = coordinator.run_campaign(
            CAMPAIGN, seed=SEED, byte_stride=STRIDE,
            max_specs=MAX_SPECS, shard_count=3,
            workdir=str(tmp_path / "fabric"), grade=False)
        assert results.meta["engine"]["mode"] == "fabric-serial"
        assert [r.to_dict() for r in results.results] == serial


class TestHeartbeats:
    def test_heartbeat_round_trip(self, tmp_path):
        path = str(tmp_path / "shard_0.heartbeat")
        write_heartbeat(path, 3, 10)
        beat = read_heartbeat(path)
        assert beat["done"] == 3
        assert beat["total"] == 10
        assert beat["time"] > 0
        assert read_heartbeat(str(tmp_path / "absent")) is None
        assert [p.name for p in tmp_path.iterdir()] \
            == ["shard_0.heartbeat"]    # atomic: no temp left behind
