"""Renderers: charts, Figure 4/6/7/8 tables with synthetic results."""

from repro.analysis.charts import ascii_pie, bar, percent
from repro.analysis.tables import (
    crash_hang_split,
    format_fig4,
    format_fig6,
    format_fig7,
    format_fig8,
    format_severity_table,
)
from tests.test_analysis import make_result


def sample_results():
    return [
        make_result(outcome="not_activated", activated=False),
        make_result(outcome="not_manifested", mnemonic="jcc"),
        make_result(outcome="fail_silence_violation"),
        make_result(outcome="crash_dumped", crash_cause="null_pointer",
                    crash_subsystem="fs", latency=3, severity="normal"),
        make_result(outcome="crash_dumped", crash_cause="invalid_opcode",
                    crash_subsystem="kernel", latency=50_000,
                    severity="most_severe", fs_status="unrecoverable",
                    campaign="C"),
        make_result(subsystem="kernel", outcome="hang"),
        make_result(subsystem="mm", outcome="crash_unknown"),
    ]


class TestCharts:
    def test_bar_clamps(self):
        assert bar(0.5, width=10) == "#####....."
        assert bar(2.0, width=4) == "####"
        assert bar(-1, width=4) == "...."

    def test_percent(self):
        assert percent(1, 4) == 25.0
        assert percent(1, 0) == 0.0

    def test_ascii_pie_sorted_by_count(self):
        from collections import Counter
        text = ascii_pie(Counter(a=3, b=1))
        assert text.index("a") < text.index("b")
        assert "75.0%" in text


class TestTableRenderers:
    def test_fig4_table(self):
        text = format_fig4("A", sample_results())
        assert "Any Random Error" in text
        assert "fs[" in text
        assert "Total[" in text
        assert "activated" in text.lower()

    def test_fig6(self):
        text = format_fig6("C", sample_results())
        assert "null_pointer" in text
        assert "dominant causes" in text

    def test_fig7(self):
        text = format_fig7("B", sample_results())
        assert "0-10" in text
        assert "within 10 cycles" in text

    def test_fig8(self):
        text = format_fig8("A", sample_results(), "fs")
        assert "fs -> fs" in text or "fs -> kernel" in text

    def test_severity_table(self):
        text = format_severity_table(sample_results())
        assert "Table 5" in text
        assert "most severe" in text
        assert "C" in text  # the most-severe case's campaign

    def test_crash_hang_split(self):
        dumped, unknown, hangs = crash_hang_split(sample_results())
        assert (dumped, unknown, hangs) == (2, 1, 1)


class TestComparison:
    def test_build_comparison_with_fake_campaigns(self, monkeypatch):
        from repro.experiments.comparison import build_comparison
        from repro.injection.runner import CampaignResults

        class FakeCtx:
            scale = "test"
            seed = 1

            def campaign(self, key):
                return CampaignResults(key, sample_results())

        text = build_comparison(FakeCtx())
        assert "Fig. 4" in text
        assert "Fig. 6" in text
        assert "Table 5" in text
        assert "| Paper |" in text
