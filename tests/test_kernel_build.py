"""Kernel build artifacts: symbol table, attribution, inventory."""

from repro.kernel.build import kernel_source_inventory
from repro.kernel.layout import KernelLayout


class TestKernelImage:
    def test_find_function_boundaries(self, kernel):
        info = kernel.functions[10]
        assert kernel.find_function(info.start) is info
        assert kernel.find_function(info.end - 1) is info
        next_info = kernel.find_function(info.end)
        assert next_info is not info

    def test_find_function_outside_text(self, kernel):
        assert kernel.find_function(0x1000) is None
        assert kernel.find_function(kernel.base - 1) is None
        assert kernel.find_function(
            kernel.base + len(kernel.code) + 100) is None

    def test_every_paper_function_exists(self, kernel):
        names = {f.name for f in kernel.functions}
        # Functions the paper names explicitly.
        for expected in ("do_page_fault", "schedule", "zap_page_range",
                         "do_generic_file_read", "do_wp_page",
                         "link_path_walk", "open_namei",
                         "get_hash_table", "generic_commit_write",
                         "pipe_read", "reschedule_idle", "can_schedule",
                         "sys_read"):
            assert expected in names, expected

    def test_subsystem_attribution(self, kernel):
        by_name = {f.name: f.subsystem for f in kernel.functions}
        assert by_name["do_page_fault"] == "arch"
        assert by_name["schedule"] == "kernel"
        assert by_name["zap_page_range"] == "mm"
        assert by_name["link_path_walk"] == "fs"
        assert by_name["strlen"] == "lib"
        assert by_name["con_putc"] == "drivers"
        assert by_name["sys_ipc"] == "ipc"
        assert by_name["ip_compute_csum"] == "net"

    def test_functions_cover_text_contiguously(self, kernel):
        ordered = sorted(kernel.functions, key=lambda f: f.start)
        for first, second in zip(ordered, ordered[1:]):
            assert first.end <= second.start

    def test_kernel_loads_below_free_memory(self, kernel):
        layout = KernelLayout()
        end_phys = (kernel.base - layout.KERNEL_BASE) + len(kernel.code)
        assert end_phys < layout.FREE_PHYS_START


class TestInventory:
    def test_all_eight_subsystems_counted(self):
        counts = kernel_source_inventory()
        assert set(counts) == {"arch", "fs", "kernel", "mm", "drivers",
                               "ipc", "lib", "net"}

    def test_fs_is_largest_like_the_paper(self):
        counts = kernel_source_inventory()
        assert counts["fs"] == max(counts.values())

    def test_net_small_and_excluded_from_injection(self, kernel,
                                                   profile):
        from repro.injection.campaigns import select_targets
        functions = select_targets(kernel, profile, "C")
        assert all(f.subsystem != "net" for f in functions)
