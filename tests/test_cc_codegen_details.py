"""Codegen shape details that the injection fidelity relies on."""

from repro.cc import compile_single
from repro.isa.assembler import assemble
from repro.isa.decoder import decode_all


def compile_and_decode(source, name):
    unit = compile_single(source)
    program = assemble(unit.text + "\n.align 64\n" + unit.data,
                       base=0x1000)
    info = next(f for f in program.functions if f.name == name)
    code = program.code[info.start - 0x1000:info.end - 0x1000]
    return decode_all(code, base=info.start), info, program


class TestColdBlocks:
    def test_error_return_compiles_to_branch_past_ret(self):
        source = """
        int f(err) {
            if (err < 0)
                return err;
            return err + 1;
        }
        """
        instrs, info, _ = compile_and_decode(source, "f")
        ret_addr = next(i.addr for i in instrs if i.op == "ret")
        branches = [i for i in instrs if i.op == "jcc"]
        assert branches, "error check must be a conditional branch"
        target = branches[0].addr + branches[0].length + branches[0].rel
        assert target > ret_addr, \
            "cold error block must live after the hot ret"

    def test_bug_guard_is_branch_over_ud2(self):
        source = """
        int f(p) {
            if (!p)
                BUG();
            return *p;
        }
        """
        instrs, _, _ = compile_and_decode(source, "f")
        ops = [i.op for i in instrs]
        assert "ud2" in ops
        ud2_index = ops.index("ud2")
        # a conditional branch precedes (and skips) the ud2
        assert any(i.op == "jcc"
                   and i.addr + i.length + i.rel > instrs[ud2_index].addr
                   for i in instrs[:ud2_index])

    def test_break_and_continue_bodies_can_be_cold(self):
        source = """
        int f(n) {
            int i;
            int total = 0;
            for (i = 0; i < n; i++) {
                if (i == 97)
                    break;
                if (i % 2)
                    continue;
                total += i;
            }
            return total;
        }
        """
        from tests.test_cc_compiler import run_minc
        assert run_minc("int main() { return 0; }" ) == 0  # smoke
        # semantics preserved:
        full = """
        %s
        int main() { return f(10); }
        """ % source
        assert run_minc(full) == sum(i for i in range(10) if i % 2 == 0)

    def test_nested_cold_blocks(self):
        source = """
        int f(a, b) {
            if (a < 0) {
                if (b < 0)
                    return -2;
                return -1;
            }
            return a + b;
        }
        int main() {
            return f(-1, -1) * 100 + f(-1, 1) * 10 + f(2, 3);
        }
        """
        from tests.test_cc_compiler import run_minc
        assert run_minc(source) == ((-2) * 100 + (-1) * 10 + 5) \
            & 0xFFFFFFFF


class TestInstructionShapes:
    def test_zeroing_uses_xor(self):
        source = "int f() { int x = 0; return x; }"
        instrs, _, _ = compile_and_decode(source, "f")
        assert any(i.op == "xor" for i in instrs)

    def test_test_against_zero(self):
        source = "int f(x) { if (x) return 1; return 0; }"
        instrs, _, _ = compile_and_decode(source, "f")
        assert any(i.op == "test" for i in instrs)

    def test_comparison_fuses_cmp_jcc(self):
        source = "int f(x) { if (x < 5) return 1; return 0; }"
        instrs, _, _ = compile_and_decode(source, "f")
        ops = [i.op for i in instrs]
        cmp_index = ops.index("cmp")
        assert ops[cmp_index + 1] == "jcc"

    def test_epilogue_is_leave_ret(self):
        source = "int f() { return 7; }"
        instrs, _, _ = compile_and_decode(source, "f")
        ops = [i.op for i in instrs]
        assert ops[-2:] == ["leave", "ret"]

    def test_string_literals_are_pooled(self):
        source = """
        int f() { return "abc"; }
        int g() { return "abc"; }
        """
        unit = compile_single(source)
        assert unit.data.count('.asciz "abc"') == 1

    def test_functions_record_subsystem(self):
        unit = compile_single("int f() { return 0; }", subsystem="mm")
        assert (".func f mm") in unit.text
