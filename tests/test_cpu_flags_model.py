"""Differential testing: ALU flags vs an independent reference model."""

from hypothesis import given, settings, strategies as st

from repro.cpu.cpu import CPU
from repro.cpu.memory import MemoryBus
from repro.isa.assembler import assemble

M32 = 0xFFFFFFFF

values = st.integers(0, M32)


def model_flags(op, a, b, carry_in=0):
    """Reference CF/ZF/SF/OF computation, written independently."""
    if op in ("add", "adc"):
        carry = carry_in if op == "adc" else 0
        full = a + b + carry
        res = full & M32
        cf = 1 if full > M32 else 0
        of = 1 if (((a ^ res) & (b ^ res)) >> 31) & 1 else 0
    elif op in ("sub", "sbb", "cmp"):
        borrow = carry_in if op == "sbb" else 0
        res = (a - b - borrow) & M32
        cf = 1 if a < b + borrow else 0
        of = 1 if (((a ^ b) & (a ^ res)) >> 31) & 1 else 0
    elif op in ("and", "or", "xor", "test"):
        if op in ("and", "test"):
            res = a & b
        elif op == "or":
            res = a | b
        else:
            res = a ^ b
        cf = of = 0
    else:
        raise AssertionError(op)
    zf = 1 if res == 0 else 0
    sf = (res >> 31) & 1
    return res, cf, zf, sf, of


def execute(op, a, b, carry_in=0):
    """Run one ALU instruction on the CPU; return (result, flags)."""
    prep = "stc" if carry_in else "clc"
    store = "cmp" not in op and op != "test"
    source = """
_start:
    mov eax, %d
    mov ecx, %d
    %s
    %s eax, ecx
    hlt
""" % (a, b, prep, op)
    program = assemble(source, base=0x1000)
    bus = MemoryBus(0x10000)
    bus.phys_write_bytes(0x1000, program.code)
    cpu = CPU(bus)
    cpu.eip = 0x1000
    cpu.regs[4] = 0x8000
    from repro.cpu.cpu import CpuHalted
    try:
        cpu.run(100)
    except CpuHalted:
        pass
    result = cpu.regs[0]
    return result, cpu.cf, cpu.zf, cpu.sf, cpu.of


@given(a=values, b=values,
       op=st.sampled_from(["add", "sub", "cmp", "and", "or", "xor",
                           "test"]))
@settings(max_examples=200, deadline=None)
def test_alu_flags_match_model(a, b, op):
    res, cf, zf, sf, of = model_flags(op, a, b)
    got_res, got_cf, got_zf, got_sf, got_of = execute(op, a, b)
    if op not in ("cmp", "test"):
        assert got_res == res
    assert (got_cf, got_zf, got_sf, got_of) == (cf, zf, sf, of), \
        "%s %#x,%#x" % (op, a, b)


@given(a=values, b=values, carry=st.booleans(),
       op=st.sampled_from(["adc", "sbb"]))
@settings(max_examples=120, deadline=None)
def test_carry_chain_ops_match_model(a, b, carry, op):
    res, cf, zf, sf, of = model_flags(op, a, b, carry_in=int(carry))
    got_res, got_cf, got_zf, got_sf, got_of = execute(
        op, a, b, carry_in=int(carry))
    assert got_res == res
    assert (got_cf, got_zf, got_sf, got_of) == (cf, zf, sf, of)


@given(a=values, count=st.integers(1, 31),
       op=st.sampled_from(["shl", "shr", "sar"]))
@settings(max_examples=120, deadline=None)
def test_shift_results_match_model(a, count, op):
    if op == "shl":
        expected = (a << count) & M32
    elif op == "shr":
        expected = a >> count
    else:
        signed = a - (1 << 32) if a >> 31 else a
        expected = (signed >> count) & M32
    source = """
_start:
    mov eax, %d
    %s eax, %d
    hlt
""" % (a, op, count)
    program = assemble(source, base=0x1000)
    bus = MemoryBus(0x10000)
    bus.phys_write_bytes(0x1000, program.code)
    cpu = CPU(bus)
    cpu.eip = 0x1000
    cpu.regs[4] = 0x8000
    from repro.cpu.cpu import CpuHalted
    try:
        cpu.run(100)
    except CpuHalted:
        pass
    assert cpu.regs[0] == expected
    assert cpu.zf == (1 if expected == 0 else 0)
    assert cpu.sf == (expected >> 31) & 1
