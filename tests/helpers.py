"""Test helpers: run raw machine code, or user programs under the kernel."""

from repro.cpu.cpu import CPU
from repro.cpu.devices import ConsoleDevice, MachineShutdown, \
    ShutdownDevice
from repro.cpu.memory import MemoryBus
from repro.isa.assembler import assemble
from repro.machine.machine import Machine, build_standard_disk
from repro.userland.build import build_program
from repro.userland.programs import PROGRAMS

FLAT_BASE = 0x1000
FLAT_RAM = 0x100000
CONSOLE_AT = 0x200000
SHUTDOWN_AT = 0x200100


class FlatMachine:
    """A paging-less bare-metal harness for ISA/CPU unit tests."""

    def __init__(self, source, base=FLAT_BASE):
        self.program = assemble(source, base=base)
        self.bus = MemoryBus(FLAT_RAM)
        self.bus.phys_write_bytes(base, self.program.code)
        self.console = ConsoleDevice()
        self.bus.attach_device(CONSOLE_AT, 0x100, self.console)
        self.bus.attach_device(SHUTDOWN_AT, 0x100, ShutdownDevice())
        self.cpu = CPU(self.bus)
        self.cpu.eip = base
        self.cpu.regs[4] = 0x8000  # a stack, below the code

    def run(self, max_cycles=1_000_000):
        """Run to the shutdown port; returns the shutdown code."""
        try:
            self.cpu.run(max_cycles)
        except MachineShutdown as stop:
            return stop.code
        raise AssertionError("program did not shut down cleanly")

    def symbol(self, name):
        return self.program.symbols[name]

    def word_at(self, symbol_or_addr):
        addr = symbol_or_addr
        if isinstance(symbol_or_addr, str):
            addr = self.symbol(symbol_or_addr)
        return self.bus.phys_read(addr, 4)


def run_flat(source, max_cycles=1_000_000):
    """Assemble + run flat code; returns (shutdown_code, FlatMachine)."""
    machine = FlatMachine(source)
    code = machine.run(max_cycles=max_cycles)
    return code, machine


# Template for "compute a value, write it to the shutdown port".
RESULT_HARNESS = """
_start:
    mov esp, 0x8000
%s
    mov ebx, 0x200100
    mov [ebx], eax
    hlt
"""


def run_fragment(body, max_cycles=1_000_000):
    """Run an asm fragment; returns eax (via the shutdown port)."""
    code, _ = run_flat(RESULT_HARNESS % body, max_cycles=max_cycles)
    return code


def run_user_program(kernel, binaries, source, iters=0,
                     max_cycles=60_000_000, name="_test"):
    """Compile MinC *source* and run it as the machine's init process.

    Returns the RunResult.  The program must call ``reboot(code)`` (or
    fall off main, in which case the kernel stays up and the watchdog
    eventually fires — test programs should reboot).
    """
    PROGRAMS[name] = (source, iters)
    try:
        test_binaries = dict(binaries)
        test_binaries["init"] = build_program(name, iters=iters)
    finally:
        del PROGRAMS[name]
    disk = build_standard_disk(test_binaries, None)
    machine = Machine(kernel, disk)
    return machine.run(max_cycles=max_cycles)


USER_PRELUDE = """
int begin() {
    open("/dev/console");
    dup(0);
    dup(0);
    return 0;
}
"""
