"""Profiler behaviour (Table 1 machinery)."""

from repro.profiling.report import format_table1, format_top_functions


class TestProfile:
    def test_samples_attributed_to_kernel_functions(self, profile):
        assert profile.kernel_samples > 1000
        assert profile.kernel_samples + profile.user_samples \
            == profile.total_samples

    def test_hot_kernel_paths_present(self, profile):
        ranked = {f.name for f in profile.ranked()}
        for expected in ("schedule", "do_system_call", "getblk", "iget",
                         "copy_page_range", "do_fork", "wake_up"):
            assert expected in ranked, expected

    def test_top_functions_cover_requested_fraction(self, profile):
        core = profile.top_functions(coverage=0.95)
        covered = sum(f.samples for f in core)
        assert covered >= 0.95 * profile.kernel_samples
        # ... and dropping the last one dips below the threshold
        without_last = covered - core[-1].samples
        assert without_last < 0.95 * profile.kernel_samples

    def test_more_coverage_means_more_functions(self, profile):
        assert len(profile.top_functions(0.5)) \
            < len(profile.top_functions(0.99))

    def test_subsystem_table_orders_paper_rows_first(self, profile):
        rows = profile.subsystem_table()
        names = [row[0] for row in rows]
        assert names[:8] == ["arch", "fs", "kernel", "mm", "drivers",
                             "ipc", "lib", "net"]

    def test_workload_attribution(self, profile):
        # the page-cache read path is driven by file workloads
        workload = profile.workload_for("do_generic_file_read")
        assert workload in ("fstime", "looper", "syscall", "pipe",
                            "context1", "spawn", "dhry", "hanoi")

    def test_reports_render(self, profile):
        table = format_table1(profile)
        assert "Table 1" in table
        assert "arch" in table and "Total" in table
        top = format_top_functions(profile)
        assert "Top" in top and "%" in top
