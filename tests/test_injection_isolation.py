"""Snapshot-clone isolation under injection.

The campaign engine's workers each clone the golden snapshot per
experiment; campaign correctness rests on clones being perfectly
independent — no shared RAM, disk or console state — and on a clone
run *after* a crashed clone behaving exactly like a fresh boot.
"""

from repro.injection.runner import BOOT_MARKER
from repro.machine.machine import Machine, build_standard_disk

WORKLOAD = "syscall"


def fresh_booted_machine(kernel, binaries):
    disk = build_standard_disk(binaries, WORKLOAD)
    machine = Machine(kernel, disk)
    machine.run_until_console(BOOT_MARKER, max_cycles=10_000_000)
    return machine


class TestCloneIsolationUnderInjection:
    def test_different_flips_do_not_cross_talk(self, kernel, harness):
        golden = harness.golden(WORKLOAD)
        snapshot = golden.snapshot
        addr = kernel.symbols["do_system_call"]
        phys = addr - snapshot.layout.KERNEL_BASE
        original = snapshot.ram[phys]
        first = snapshot.clone()
        second = snapshot.clone()
        first.flip_bit(addr, 0)
        second.flip_bit(addr, 3)
        # each clone sees only its own corruption...
        assert first.read_byte(addr) == original ^ 0x01
        assert second.read_byte(addr) == original ^ 0x08
        # ...and the snapshot master stays pristine.
        assert snapshot.ram[phys] == original
        budget = golden.cycles * 2
        result_first = first.run(max_cycles=budget)
        result_second = second.run(max_cycles=budget)
        # Each corrupted clone behaves exactly like a freshly booted
        # machine carrying the same flip: nothing leaked between them.
        for bit, observed in ((0, result_first), (3, result_second)):
            machine = fresh_booted_machine(kernel, harness.binaries)
            machine.flip_bit(addr, bit)
            fresh = machine.run(max_cycles=budget)
            assert fresh.status == observed.status
            assert fresh.console == observed.console
            assert fresh.cycles == observed.cycles
            assert fresh.disk_image == observed.disk_image

    def test_clone_after_crashed_clone_matches_fresh_boot(self, kernel,
                                                          harness):
        golden = harness.golden(WORKLOAD)
        snapshot = golden.snapshot
        addr = kernel.symbols["do_system_call"]
        crasher = snapshot.clone()
        crasher.write_byte(addr, 0x0F)       # ud2: guaranteed crash
        crasher.write_byte(addr + 1, 0x0B)
        crashed = crasher.run(max_cycles=golden.cycles * 2)
        assert crashed.status != "shutdown"
        # A clone taken after the crash must be as pristine as a boot.
        clean = snapshot.clone().run(max_cycles=golden.cycles * 2)
        assert clean.status == "shutdown"
        assert clean.exit_code == golden.exit_code
        assert clean.console == golden.console
        assert clean.cycles == golden.cycles
        assert clean.disk_image == golden.final_disk

    def test_run_spec_results_are_order_independent(self, harness):
        """Two injections through the harness can run in any order."""
        from repro.injection.campaigns import plan_campaign, \
            select_targets
        functions = select_targets(harness.kernel, harness.profile, "C")
        specs = plan_campaign(harness.kernel, "C", functions,
                              seed=11, byte_stride=5)[:2]
        assert len(specs) == 2
        forward = [harness.run_spec(s, grade=False).to_dict()
                   for s in specs]
        backward = [harness.run_spec(s, grade=False).to_dict()
                    for s in reversed(specs)]
        assert forward == list(reversed(backward))
