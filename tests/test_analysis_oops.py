"""ksymoops-style annotation and the assertion-placement advisor."""

from repro.analysis.assertions import format_recommendations, \
    recommend_assertion_sites
from repro.analysis.oops import annotate_crash, disassemble_around, \
    symbolize
from repro.machine.machine import Machine, build_standard_disk
from tests.test_analysis import make_result


class TestSymbolize:
    def test_kernel_text_symbolized(self, kernel):
        address = kernel.symbols["schedule"] + 3
        text = symbolize(kernel, address)
        assert text.startswith("schedule+0x3/")

    def test_non_text_address_hex(self, kernel):
        assert symbolize(kernel, 0x1234) == "0x00001234"

    def test_disassemble_around_marks_fault(self, kernel):
        address = kernel.symbols["schedule"]
        lines = disassemble_around(kernel, address + 1)
        assert any(line.startswith("->") for line in lines)
        assert any("push %ebp" in line for line in lines)


class TestAnnotateCrash:
    def crash_machine(self, kernel, binaries):
        """Produce a real crash by injecting ud2 into the scheduler."""
        from repro.isa.decoder import decode_all
        disk = build_standard_disk(binaries, "context1")
        machine = Machine(kernel, disk)
        machine.run_until_console("INIT: starting workload")
        info = kernel.find_function(kernel.symbols["schedule"])
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        # an always-executed prologue boundary (mov %esp,%ebp)
        target = decode_all(code, base=info.start)[1].addr

        def corrupt(m):
            m.write_byte(target, 0x0F)
            m.write_byte(target + 1, 0x0B)

        machine.arm_breakpoint(target, corrupt)
        result = machine.run(max_cycles=60_000_000)
        return machine, result

    def test_real_crash_annotation(self, kernel, binaries):
        machine, result = self.crash_machine(kernel, binaries)
        assert result.crash is not None
        report = annotate_crash(kernel, result.crash, machine=machine)
        assert "EIP:" in report
        assert "schedule+" in report
        assert "Code:" in report
        assert "ud2a" in report
        assert "Call Trace:" in report

    def test_page_fault_message(self, kernel):
        from repro.machine.machine import CrashRecord
        crash = CrashRecord([14, 0, 0x1B, kernel.symbols["iget"], 0x10,
                             0x202, 0, 0, 0, 0, 0, 0, 0, 0, 123, 2])
        report = annotate_crash(kernel, crash)
        assert "NULL pointer dereference" in report
        assert "0000001b" in report
        assert "iget+0x0" in report


class TestAssertionAdvisor:
    def test_escaping_functions_rank_first(self):
        results = []
        for _ in range(4):
            results.append(make_result(
                function="leaky", outcome="crash_dumped",
                crash_cause="gpf", crash_subsystem="kernel"))  # escapes fs
        for _ in range(4):
            results.append(make_result(
                function="contained", outcome="crash_dumped",
                crash_cause="gpf", crash_subsystem="fs"))
        sites = recommend_assertion_sites(results)
        assert sites[0].function == "leaky"
        assert sites[0].escapes == 4
        assert sites[0].escape_rate == 1.0
        assert sites[1].function == "contained"
        assert sites[1].escapes == 0

    def test_severity_raises_score(self):
        results = [make_result(function="benign", outcome="crash_dumped",
                               crash_cause="gpf", crash_subsystem="fs",
                               severity="normal")] * 2 + \
                  [make_result(function="nasty", outcome="crash_dumped",
                               crash_cause="gpf", crash_subsystem="fs",
                               severity="most_severe")] * 2
        sites = recommend_assertion_sites(results)
        assert sites[0].function == "nasty"

    def test_min_crashes_filters_noise(self):
        results = [make_result(function="once", outcome="crash_dumped",
                               crash_cause="gpf", crash_subsystem="fs")]
        assert recommend_assertion_sites(results, min_crashes=2) == []

    def test_report_renders(self):
        results = [make_result(function="leaky", outcome="crash_dumped",
                               crash_cause="gpf",
                               crash_subsystem="kernel")] * 3
        text = format_recommendations(results)
        assert "leaky" in text
        assert "kernel:3" in text

    def test_empty_report(self):
        assert "no dumped crashes" in format_recommendations([])
