"""RunResult/CrashRecord parsing and machine lifecycle edge cases."""

import pytest

from repro.machine.machine import CrashRecord, Machine, RunResult, \
    build_standard_disk, parse_bx_header


class TestCrashRecord:
    def test_field_mapping(self):
        words = [14, 2, 0x1B, 0xC0101234, 0x10, 0x202,
                 1, 2, 3, 4, 5, 6, 7, 8, 999, 3]
        record = CrashRecord(words)
        assert record.vector == 14
        assert record.error_code == 2
        assert record.cr2 == 0x1B
        assert record.eip == 0xC0101234
        assert record.regs["edi"] == 1
        assert record.regs["eax"] == 8
        assert record.tsc == 999
        assert record.pid == 3

    def test_short_record_tolerated(self):
        record = CrashRecord([6, 0, 0, 0xC0100000, 0x10, 0,
                              0, 0, 0, 0, 0, 0, 0, 0])
        assert record.tsc == 0
        assert record.pid == -1


class TestRunResult:
    def test_crashed_predicate(self):
        crash = CrashRecord([6] + [0] * 15)
        assert RunResult("halted", None, "", crash, 1, 1, b"").crashed
        assert RunResult("triple_fault", None, "", None, 1, 1,
                         b"").crashed
        assert not RunResult("shutdown", 0, "", None, 1, 1, b"").crashed

    def test_crashes_defaults_from_crash(self):
        crash = CrashRecord([6] + [0] * 15)
        result = RunResult("halted", None, "", crash, 1, 1, b"")
        assert result.crashes == [crash]
        assert RunResult("shutdown", 0, "", None, 1, 1, b"").crashes == []

    def test_crashes_keeps_every_record_and_crash_is_last(self):
        first = CrashRecord([14] + [0] * 15)
        second = CrashRecord([6] + [0] * 15)
        result = RunResult("halted", None, "", second, 1, 1, b"",
                           crashes=[first, second])
        assert result.crashes == [first, second]
        assert result.crash is second


class TestMachineLifecycle:
    def test_watchdog_budget_enforced(self, kernel, binaries):
        machine = Machine(kernel, build_standard_disk(binaries, "dhry"))
        result = machine.run(max_cycles=50_000)  # way too small
        assert result.status == "watchdog"
        assert result.cycles >= 50_000

    def test_run_until_console_raises_on_missing_marker(self, kernel,
                                                        binaries):
        from repro.cpu.cpu import WatchdogExpired
        from repro.cpu.devices import MachineShutdown
        machine = Machine(kernel, build_standard_disk(binaries, None))
        # Either the budget expires or the machine powers off without
        # ever printing the marker; both surface, never a silent hang.
        with pytest.raises((WatchdogExpired, MachineShutdown)):
            machine.run_until_console("NEVER PRINTED",
                                      max_cycles=300_000)

    def test_timerless_machine_wedges_in_idle(self, kernel, binaries):
        machine = Machine(kernel, build_standard_disk(binaries, None),
                          timer=False)
        result = machine.run(max_cycles=60_000_000)
        # without a timer the idle hlt cannot resume: recorded as a
        # halted (wedged) machine, never a host error
        assert result.status in ("halted", "shutdown")

    def test_parse_bx_header(self, binaries):
        magic, entry, filesz, bss = parse_bx_header(
            binaries["hanoi"].image)
        assert magic == 0x0B17C0DE
        assert filesz == len(binaries["hanoi"].image)

    def test_console_capture_is_cumulative(self, kernel, binaries):
        machine = Machine(kernel, build_standard_disk(binaries, None))
        machine.run_until_console("Linux version")
        partial = machine.console.text
        machine.run(max_cycles=10_000_000)
        assert machine.console.text.startswith(partial)
