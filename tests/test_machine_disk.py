"""mkfs / file access / fsck severity grading."""

import struct

import pytest

from repro.machine.disk import (
    BLOCK_SIZE,
    DATA_START,
    LIBC_CONTENT,
    fsck,
    list_dir,
    mkfs,
    read_file,
)

FILES = {
    "/bin/init": b"\x01" * 500,
    "/bin/tool": b"\x02" * 3000,
    "/etc/workload": b"/bin/tool",
    "/lib/libc.txt": LIBC_CONTENT,
    "/var/log": b"",
}


@pytest.fixture()
def image():
    return mkfs(FILES)


class TestMkfsAndRead:
    def test_all_files_readable(self, image):
        for path, content in FILES.items():
            assert read_file(image, path) == content

    def test_directories_listed(self, image):
        names = {name for name, _ in list_dir(image)}
        assert {"bin", "etc", "lib", "var"} <= names

    def test_missing_file_is_none(self, image):
        assert read_file(image, "/no/such") is None
        assert read_file(image, "/bin/ghost") is None

    def test_multi_block_file(self, image):
        # 3000 bytes spans 3 blocks
        assert read_file(image, "/bin/tool") == b"\x02" * 3000

    def test_file_too_large_rejected(self):
        # limit: 11 direct + 256 indirect blocks
        with pytest.raises(Exception):
            mkfs({"/big": b"x" * (268 * BLOCK_SIZE)})

    def test_indirect_file_roundtrip(self):
        # > 11 blocks forces the single-indirect path
        payload = bytes(range(256)) * 4 * 30      # 30 KiB
        image = mkfs(dict(FILES, **{"/bin/fat": payload}))
        assert read_file(image, "/bin/fat") == payload
        assert fsck(image).status == "clean"


class TestFsck:
    def test_fresh_image_is_clean(self, image):
        report = fsck(image)
        assert report.status == "clean"
        assert not report.issues

    def test_dirty_flag_only_is_dirty(self, image):
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 8 * 4, 0)  # state = mounted
        report = fsck(bytes(damaged))
        assert report.status == "dirty"

    def test_bad_magic_unrecoverable(self, image):
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 0, 0x1234)
        assert fsck(bytes(damaged)).status == "unrecoverable"

    def test_bitmap_mismatch_inconsistent(self, image):
        damaged = bytearray(image)
        bitmap = BLOCK_SIZE  # bitmap block offset
        damaged[bitmap + (DATA_START >> 3)] = 0  # clear used bits
        report = fsck(bytes(damaged))
        assert report.status == "inconsistent"

    def test_wild_block_pointer_inconsistent(self, image):
        damaged = bytearray(image)
        # inode table starts at block 2; inode 2 is the first directory.
        base = 2 * BLOCK_SIZE + 2 * 64
        struct.pack_into("<I", damaged, base + 16, 0xFFFF)
        report = fsck(bytes(damaged))
        assert report.status in ("inconsistent", "unrecoverable")

    def test_corrupt_critical_file_unrecoverable(self, image):
        damaged = bytearray(image)
        offset = bytes(damaged).find(b"\x01" * 100)
        damaged[offset] = 0xFF
        report = fsck(bytes(damaged),
                      golden_files={"/bin/init": FILES["/bin/init"]})
        assert report.status == "unrecoverable"
        assert any("critical" in issue for issue in report.issues)

    def test_corrupt_libc_unrecoverable(self, image):
        damaged = bytearray(image)
        offset = bytes(damaged).find(b"LIBC-2.2.4-SIM")
        damaged[offset:offset + 4] = b"XXXX"
        assert fsck(bytes(damaged)).status == "unrecoverable"

    def test_repair_rebuilds_bitmap_and_clears_dirty(self, image):
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 8 * 4, 0)
        bitmap = BLOCK_SIZE
        damaged[bitmap + 4] = 0
        report = fsck(bytes(damaged), repair=True)
        assert report.repaired is not None
        assert fsck(report.repaired).status == "clean"

    def test_truncated_image_unrecoverable(self):
        assert fsck(b"\x00" * 16).status == "unrecoverable"


class TestSeverityGrading:
    def test_clean_disk_is_normal(self, kernel, binaries, image):
        from repro.injection.severity import grade_severity
        from repro.machine.machine import build_standard_disk
        disk = build_standard_disk(binaries, None)
        severity, status = grade_severity(kernel, disk)
        assert severity == "normal"
        assert status == "clean"

    def test_unrecoverable_disk_is_most_severe(self, kernel, image):
        from repro.injection.severity import grade_severity
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 0, 0)
        severity, status = grade_severity(kernel, bytes(damaged))
        assert severity == "most_severe"

    def test_downtime_model_ordering(self):
        from repro.injection.severity import SEVERITY_DOWNTIME
        assert SEVERITY_DOWNTIME["normal"] < SEVERITY_DOWNTIME["severe"] \
            < SEVERITY_DOWNTIME["most_severe"]


class TestSeverityReboot:
    def test_inconsistent_but_bootable_is_severe(self, kernel, binaries):
        """Structural damage that fsck can repair grades as 'severe'
        (the reboot attempt on the repaired image succeeds)."""
        import struct as _struct
        from repro.injection.severity import grade_severity
        from repro.machine.machine import build_standard_disk
        disk = bytearray(build_standard_disk(binaries, None))
        # break the bitmap (repairable) and mark mounted-dirty
        _struct.pack_into("<I", disk, 8 * 4, 0)
        disk[BLOCK_SIZE + 2] = 0
        severity, status = grade_severity(kernel, bytes(disk))
        assert status == "inconsistent"
        assert severity == "severe"

    def test_repaired_but_unbootable_is_most_severe(self, kernel,
                                                    binaries):
        """fsck repair succeeds but init is gone: reformat class."""
        from repro.injection.severity import grade_severity
        from repro.machine.machine import build_standard_disk
        trimmed = {k: v for k, v in binaries.items() if k != "init"}
        disk = bytearray(build_standard_disk(trimmed, None))
        import struct as _struct
        _struct.pack_into("<I", disk, 8 * 4, 0)
        disk[BLOCK_SIZE + 2] = 0        # inconsistent -> repair+reboot
        severity, status = grade_severity(kernel, bytes(disk))
        assert severity == "most_severe"
