"""Equivalence classes: fingerprints, pilot plans and extrapolation.

Covers the static partitioner (fingerprint stability across fresh
partitioners and across an image re-decode — a hypothesis property),
the class-key invariants (same class => same instruction class and
predicted trap set), plan determinism, and a small end-to-end pruned
campaign whose journal must stay loadable, resumable, fabric-mergeable
and delta-consumable while every extrapolated record carries
provenance.
"""

import json
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.staticanalysis.equivalence import (
    SitePartitioner,
    journal_extrapolation,
    plan_equivalence,
)


@pytest.fixture(scope="module")
def partitioner(kernel):
    return SitePartitioner(kernel)


@pytest.fixture(scope="module")
def fs_functions(kernel):
    return [f for f in kernel.functions
            if f.subsystem == "fs" and f.end - f.start >= 4]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_fingerprint_stable_across_partitioners(kernel, partitioner,
                                                fs_functions, data):
    """The class fingerprint of a site is a pure function of the
    image: fresh partitioners (fresh caches, fresh decode) agree."""
    info = data.draw(st.sampled_from(fs_functions))
    state = partitioner._pre._function_state(info.name)
    if state is None:
        return
    instrs = state[2]
    addr = data.draw(st.sampled_from(sorted(instrs)))
    byte = data.draw(st.integers(0, instrs[addr].length - 1))
    bit = data.draw(st.integers(0, 7))
    fp = partitioner.fingerprint_site(info.name, addr, byte, bit)
    again = SitePartitioner(kernel).fingerprint_site(info.name, addr,
                                                    byte, bit)
    assert again == fp


def test_fingerprint_stable_across_redecode(kernel, partitioner,
                                            fs_functions):
    from repro.kernel.build import build_kernel
    redecoded = SitePartitioner(build_kernel())
    info = fs_functions[0]
    state = partitioner._pre._function_state(info.name)
    for addr in sorted(state[2])[:6]:
        for bit in (0, 5):
            assert (redecoded.fingerprint_site(info.name, addr, 0, bit)
                    == partitioner.fingerprint_site(info.name, addr, 0,
                                                    bit))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_same_class_shares_instr_class_and_traps(kernel, harness,
                                                 partitioner, data):
    """Two sites in one class always agree on the parts of the key a
    reader relies on: instruction class and predicted trap set."""
    _, specs = harness.plan_specs("A", seed=2003, byte_stride=9,
                                  max_specs=120)
    classes = partitioner.partition(specs)
    multi = [v for v in classes.values() if len(v) > 1]
    if not multi:
        return
    members = data.draw(st.sampled_from(multi))
    first, second = (specs[i] for i in data.draw(
        st.tuples(st.sampled_from(members), st.sampled_from(members))))
    fresh = SitePartitioner(kernel)
    a = fresh.features(first)
    b = fresh.features(second)
    assert a.get("iclass") == b.get("iclass")
    assert a.get("traps") == b.get("traps")


def test_plan_is_deterministic(harness):
    plans = [plan_equivalence(harness, "A", seed=2003, byte_stride=9,
                              max_specs=60) for _ in range(2)]
    first, second = plans
    assert first.fingerprint == second.fingerprint
    assert sorted(first.classes) == sorted(second.classes)
    for fp, cls in first.classes.items():
        other = second.classes[fp]
        assert cls.members == other.members
        assert cls.pilots == other.pilots
        assert cls.audits == other.audits


def test_plan_selects_pilots_and_audits(harness):
    plan = plan_equivalence(harness, "A", seed=2003, byte_stride=9,
                            max_specs=60)
    assert 0 < len(plan.injected_indices) <= len(plan.specs)
    for cls in plan.classes.values():
        assert len(cls.pilots) == min(2, len(cls.members))
        assert set(cls.pilots) <= set(cls.members)
        assert set(cls.audits) <= set(cls.members) - set(cls.pilots)
    # _ensure_audited: any multi-member partition measures accuracy.
    if any(len(c.members) > len(c.pilots)
           for c in plan.classes.values()):
        assert any(c.audits for c in plan.classes.values())


def test_plan_composes_with_prune_dead(harness):
    plain = plan_equivalence(harness, "A", seed=2003, byte_stride=9,
                             max_specs=60)
    pruned = plan_equivalence(harness, "A", seed=2003, byte_stride=9,
                              max_specs=60, prune_dead=True)
    assert len(pruned.specs) <= len(plain.specs)
    assert pruned.summary()["n_specs"] == len(pruned.specs)


def test_fault_model_specs_partition_by_model(harness, partitioner):
    """Fault-model campaigns compose: specs carrying a ``fault_model``
    dict class by model identity, not by instruction bytes."""
    from repro.injection.faultmodels import plan_fault_model_campaign
    specs = plan_fault_model_campaign(harness.kernel, harness.profile,
                                      "mem", seed=2003, max_specs=6)
    feats = partitioner.features(specs[0])
    assert feats["kind"] == "model"
    fps = {partitioner.fingerprint(s) for s in specs}
    assert len(fps) >= 1       # digests, not crashes


class TestEquivCampaignJournal:
    """A small real pruned campaign and its journal contracts."""

    CAMPAIGN = dict(seed=2003, byte_stride=3, max_specs=18, grade=False)

    @pytest.fixture(scope="class")
    def journal_path(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("equiv") / "equiv.jsonl")

    @pytest.fixture(scope="class")
    def campaign(self, harness, journal_path):
        return harness.run_campaign("C", equivalence=True,
                                    journal_path=journal_path,
                                    **self.CAMPAIGN)

    def test_extrapolation_happened(self, campaign):
        meta = campaign.meta["equivalence"]
        assert meta["extrapolated"] >= 1
        assert meta["injected"] + meta["extrapolated"] \
            == len(campaign.results)
        assert meta["injected_fraction"] < 1.0

    def test_every_extrapolated_record_carries_provenance(
            self, campaign, journal_path):
        census = journal_extrapolation(journal_path)
        meta = campaign.meta["equivalence"]
        assert census["malformed"] == 0
        assert census["extrapolated"] == meta["extrapolated"]
        assert census["executed"] == meta["injected"]
        assert sum(census["provenance"].values()) \
            == meta["extrapolated"]

    def test_journal_loads_complete_as_plain_campaign(
            self, campaign, journal_path):
        from repro.injection.engine import CampaignJournal
        loaded = CampaignJournal(journal_path).load(
            campaign.meta["fingerprint"])
        assert len(loaded) == len(campaign.results)
        assert ([loaded[i].to_dict()
                 for i in range(len(campaign.results))]
                == [r.to_dict() for r in campaign.results])

    def test_plain_campaign_resumes_from_equiv_journal(
            self, harness, campaign, journal_path, tmp_path):
        copy = str(tmp_path / "resume.jsonl")
        shutil.copyfile(journal_path, copy)
        resumed = harness.run_campaign("C", journal_path=copy,
                                       resume=True, **self.CAMPAIGN)
        assert resumed.meta["engine"]["resumed_results"] \
            == len(campaign.results)
        assert ([r.to_dict() for r in resumed.results]
                == [r.to_dict() for r in campaign.results])

    def test_fabric_merge_accepts_equiv_journal(self, campaign,
                                                journal_path):
        from repro.injection.fabric import merge_shard_journals
        merged = merge_shard_journals(
            [journal_path], plan_fp=campaign.meta["fingerprint"],
            n_specs=len(campaign.results))
        assert len(merged.results) == len(campaign.results)
        assert not merged.missing

    def test_delta_planner_reads_equiv_journal(self, campaign,
                                               journal_path):
        from repro.staticanalysis.delta import load_journal_results
        header, by_coords = load_journal_results(journal_path)
        assert header["fingerprint"] == campaign.meta["fingerprint"]
        assert len(by_coords) == len(campaign.results)

    def test_kequiv_audit_cli(self, journal_path, capsys):
        from repro.tools import kequiv
        assert kequiv.main(["audit", journal_path]) == 0
        out = capsys.readouterr().out
        assert "extrapolated" in out
        assert kequiv.main(["audit", journal_path, "--json"]) == 0
        census = json.loads(capsys.readouterr().out)
        assert census["malformed"] == 0
        assert census["extrapolated"] >= 1
