"""Differential harness: translated execution is bit-identical.

The translated fast path is admissible as an experiment engine only if
it is indistinguishable from the interpreter on every observable the
campaigns record.  Three layers of evidence:

* a hypothesis lockstep property drawing random specs from a seeded
  pool (campaign-A fs flips plus every fault model) and comparing the
  full ``InjectionResult.to_dict()`` — registers, memory hash, cycle
  and instret stamps, dump records, outcome;
* a ≥200-spec seeded acceptance slice (campaign A, the intermittent
  fault model, and a recovery-kernel slice) compared wholesale;
* a cycle-budget bisection shrinker that, given a divergence, narrows
  it to the first architecturally divergent instruction — with a
  meta-test that plants a divergence and checks the shrinker finds
  exactly where it was planted.
"""

import copy
import hashlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu.cpu import CPU, CpuHalted, WatchdogExpired
from repro.cpu.memory import MemoryBus
from repro.cpu.translate import BlockCache
from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.faultmodels import (
    plan_fault_model_campaign,
    run_fault_model_campaign,
)
from repro.isa.assembler import assemble

# ----------------------------------------------------------------------
# spec pool
# ----------------------------------------------------------------------


def spec_pool(harness):
    """A seeded, deterministic pool mixing every fault shape."""
    functions = select_targets(harness.kernel, harness.profile, "A")
    pool = [s for s in plan_campaign(harness.kernel, "A", functions,
                                     seed=2003, byte_stride=40)
            if s.subsystem == "fs"]
    for kind in ("mem", "reg_trap", "intermittent", "disk"):
        pool.extend(plan_fault_model_campaign(
            harness.kernel, harness.profile, kind, seed=2003,
            max_specs=6))
    return pool


class TestLockstepProperty:
    """Random draws from the pool must agree field-for-field."""

    _reference = {}  # index -> interpreter to_dict, shared across draws

    @given(index=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_spec_bit_identical(self, harness,
                                       translated_harness, index):
        pool = spec_pool(harness)
        spec = pool[index % len(pool)]
        key = index % len(pool)
        if key not in self._reference:
            self._reference[key] = harness.run_spec(
                copy.deepcopy(spec), grade=False).to_dict()
        translated = translated_harness.run_spec(
            copy.deepcopy(spec), grade=False).to_dict()
        assert translated == self._reference[key]


# ----------------------------------------------------------------------
# the ≥200-spec acceptance slice
# ----------------------------------------------------------------------


def _dicts(results):
    return [r.to_dict() for r in results]


class TestSeededSlice:
    def test_campaign_a_slice(self, harness, translated_harness):
        interp = harness.run_campaign("A", seed=2003, byte_stride=18,
                                      max_specs=140, grade=False,
                                      jobs=2)
        translated = translated_harness.run_campaign(
            "A", seed=2003, byte_stride=18, max_specs=140,
            grade=False, jobs=2)
        assert len(interp) >= 140
        assert _dicts(translated) == _dicts(interp)

    def test_intermittent_fault_model_slice(self, harness,
                                            translated_harness):
        interp = run_fault_model_campaign(harness, "intermittent",
                                          seed=2003, max_specs=40,
                                          grade=False, jobs=2)
        translated = run_fault_model_campaign(
            translated_harness, "intermittent", seed=2003,
            max_specs=40, grade=False, jobs=2)
        assert len(interp) >= 20
        assert _dicts(translated) == _dicts(interp)

    def test_recovery_kernel_slice(self, kernel, binaries, profile):
        from repro.injection.runner import InjectionHarness
        interp_h = InjectionHarness(kernel, binaries, profile,
                                    recovery=True)
        xlate_h = InjectionHarness(kernel, binaries, profile,
                                   recovery=True, translate=True)
        interp = interp_h.run_campaign("A", seed=2003, byte_stride=40,
                                       max_specs=25, grade=False,
                                       jobs=2)
        translated = xlate_h.run_campaign("A", seed=2003,
                                          byte_stride=40,
                                          max_specs=25, grade=False,
                                          jobs=2)
        assert len(interp) >= 20
        assert _dicts(translated) == _dicts(interp)


# ----------------------------------------------------------------------
# shrink-to-first-divergent-instruction
# ----------------------------------------------------------------------

BASE = 0x1000

SHRINK_SRC = """
_start:
    mov eax, 0
    mov ecx, 50
loop:
target:
    add eax, 1
    xor edx, eax
    dec ecx
    jne loop
    hlt
"""


def _state(cpu, include_ram=True):
    state = (tuple(cpu.regs), cpu.eip, cpu.instret,
             cpu.cf, cpu.zf, cpu.sf, cpu.of, cpu.pf)
    if include_ram:
        state += (hashlib.sha256(bytes(cpu.bus.ram)).hexdigest(),)
    return state


def _run_to(source, budget, translated, prepare=None,
            include_ram=True):
    """Fresh machine run to an absolute cycle budget; returns state.

    Both engines test ``cycles >= max_cycles`` at their loop heads,
    so a budget cuts both at the identical retirement boundary.
    """
    program = assemble(source, base=BASE)
    bus = MemoryBus(0x100000)
    bus.phys_write_bytes(BASE, program.code)
    cpu = CPU(bus)
    cpu.eip = BASE
    cpu.regs[4] = 0x8000
    cache = BlockCache(bus) if translated else None
    if prepare is not None:
        prepare(cpu, translated)
    try:
        if translated:
            cache.run(cpu, budget)
        else:
            cpu.run(budget)
    except (CpuHalted, WatchdogExpired):
        pass
    return _state(cpu, include_ram)


def first_divergence(source, limit=100_000, prepare=None,
                     include_ram=True):
    """Bisect the cycle budget down to the first divergent instruction.

    Returns ``None`` when interpreter and translator agree at
    ``limit``; otherwise a dict pinpointing the minimal budget at
    which the two engines differ, the address of the instruction that
    retired there, and both end states.  Re-running from scratch at
    every probe is sound because both engines are deterministic.
    ``include_ram=False`` drops the RAM hash from the metric — needed
    when the caller plants a divergence by seeding the two engines
    with different code bytes, which would otherwise register as a
    budget-0 divergence.
    """

    def probe(budget, translated):
        return _run_to(source, budget, translated, prepare,
                       include_ram)

    if probe(limit, False) == probe(limit, True):
        return None
    lo, hi = 0, limit  # invariant: agree at lo, diverge at hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid, False) == probe(mid, True):
            lo = mid
        else:
            hi = mid
    agreed = probe(lo, False)
    return {
        "budget": hi,
        "eip": agreed[1],          # the next-to-retire = divergent ins
        "instret": agreed[2],
        "interp": probe(hi, False),
        "translated": probe(hi, True),
    }


class TestShrinker:
    def test_identical_engines_report_no_divergence(self):
        assert first_divergence(SHRINK_SRC) is None

    def test_planted_divergence_is_localized(self):
        # Plant a fault visible only to the translated engine: patch
        # the `add eax, 1` immediate to 2 in ITS ram before execution.
        # The engines then genuinely run different programs and the
        # shrinker must pin the first divergence to that instruction.
        program = assemble(SHRINK_SRC, base=BASE)
        target = program.symbols["target"]

        def prepare(cpu, translated):
            if translated:
                cpu.bus.phys_write(target + 2, 1, 2)

        report = first_divergence(SHRINK_SRC, prepare=prepare,
                                  include_ram=False)
        assert report is not None
        assert report["eip"] == target
        assert report["interp"] != report["translated"]
        # minimal: one cycle earlier the engines still agreed
        assert _run_to(SHRINK_SRC, report["budget"] - 1, False,
                       prepare, include_ram=False) \
            == _run_to(SHRINK_SRC, report["budget"] - 1, True,
                       prepare, include_ram=False)
