"""Targeted single-injection experiments with known expected outcomes."""

import pytest

from repro.injection.campaigns import InjectionSpec
from repro.injection.outcomes import latency_bucket


def make_spec(kernel, function, byte_offset, bit, campaign="A",
              mnemonic="?", instr_addr=None):
    info = next(f for f in kernel.functions if f.name == function)
    return InjectionSpec(
        campaign=campaign,
        function=function,
        subsystem=info.subsystem,
        instr_addr=(instr_addr if instr_addr is not None else info.start),
        instr_len=1,
        byte_offset=byte_offset,
        bit=bit,
        mnemonic=mnemonic,
    )


class TestKnownOutcomes:
    def test_uncovered_function_not_activated(self, kernel, harness):
        # crash_dump only runs when something crashes: never in golden.
        spec = make_spec(kernel, "crash_dump", 0, 0)
        result = harness.run_spec(spec)
        assert result.outcome == "not_activated"
        assert not result.activated

    def test_push_ebp_to_ud2_crashes_invalid_opcode(self, kernel,
                                                    harness):
        # Prologue byte 0x55 (push ebp); 0x55 ^ 0x40 = 0x15 -- actually
        # craft the exact ud2 by flipping nothing: instead corrupt the
        # prologue to an undefined opcode: 0x55 ^ (1<<6) = 0x15 is
        # "adc eax, imm32" (defined). Use bit 3: 0x55 ^ 8 = 0x5d (pop
        # ebp) -> stack imbalance. For determinism we pick sys_getpid
        # and flip bit 6: 0x55 -> 0x15 adc: swallows 4 bytes -> chaos.
        spec = make_spec(kernel, "sys_getpid", 0, 6)
        result = harness.run_spec(spec)
        assert result.activated
        assert result.outcome in ("crash_dumped", "crash_unknown",
                                  "hang", "fail_silence_violation",
                                  "not_manifested")

    def test_flip_je_to_jne_over_bug_gives_invalid_opcode(self, kernel,
                                                          harness):
        """The paper's Table 7 example 4: reversed branch lands on ud2.

        free_page() begins with a BUG() guard compiled as a conditional
        branch around ud2; reversing it executes the BUG for a healthy
        page.
        """
        from repro.isa.decoder import decode_all
        info = next(f for f in kernel.functions
                    if f.name == "free_page")
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        target = None
        instrs = decode_all(code, base=info.start)
        for i, ins in enumerate(instrs):
            if ins.op == "jcc" and i + 1 < len(instrs) \
                    and instrs[i + 1].op == "ud2":
                target = ins
                break
        assert target is not None, "no BUG() guard found in free_page"
        byte_offset = 1 if target.raw[0] == 0x0F else 0
        spec = make_spec(kernel, "free_page", byte_offset, 0,
                         campaign="C", mnemonic="jcc",
                         instr_addr=target.addr)
        result = harness.run_spec(spec)
        assert result.activated
        assert result.outcome == "crash_dumped"
        assert result.crash_cause == "invalid_opcode"
        assert result.crash_function == "free_page"
        assert result.crash_subsystem == "mm"
        # reversing the guard traps on the very next instruction
        assert result.latency < 100

    def test_espipe_fail_silence_violation(self, kernel, harness):
        """The paper's §8 FSV example: reverse pipe_read's ESPIPE check.

        The kernel then (falsely) reports -ESPIPE to a correct caller:
        a fail-silence violation, not a crash.
        """
        from repro.isa.decoder import decode_all
        info = next(f for f in kernel.functions
                    if f.name == "pipe_read")
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        first_jcc = next(i for i in decode_all(code, base=info.start)
                         if i.op == "jcc")
        byte_offset = 1 if first_jcc.raw[0] == 0x0F else 0
        spec = make_spec(kernel, "pipe_read", byte_offset, 0,
                         campaign="C", mnemonic="jcc",
                         instr_addr=first_jcc.addr)
        result = harness.run_spec(spec)
        assert result.activated
        assert result.outcome == "fail_silence_violation"
        assert "FAIL" in (result.console_tail or "")

    def test_not_manifested_when_flip_is_harmless(self, kernel, harness):
        """Flipping a bit in a debug-guard branch displacement is
        invisible: the guard is never taken."""
        from repro.isa.decoder import decode_all
        info = next(f for f in kernel.functions if f.name == "sys_read")
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        instrs = decode_all(code, base=info.start)
        # A branch to a cold error block (placed after the ret) is never
        # taken on the common path -- its displacement bytes are dead.
        ret_addr = next(i.addr for i in instrs if i.op == "ret")
        candidates = [i for i in instrs
                      if i.op == "jcc" and i.length == 6
                      and (i.addr + i.length + i.rel) > ret_addr]
        assert candidates
        target = candidates[0]
        spec = make_spec(kernel, "sys_read", 4, 2, campaign="B",
                         mnemonic="jcc", instr_addr=target.addr)
        result = harness.run_spec(spec)
        assert result.activated
        # displacement of a never-taken branch: nothing can happen
        assert result.outcome == "not_manifested"

    def test_crash_record_fields_consistent(self, kernel, harness):
        spec = make_spec(kernel, "free_page", 0, 6)  # push ebp -> adc
        result = harness.run_spec(spec)
        if result.outcome == "crash_dumped":
            assert result.crash_vector is not None
            assert result.crash_cause is not None
            assert result.latency is not None and result.latency >= 0
            assert result.severity in ("normal", "severe", "most_severe")

    def test_results_roundtrip_json(self, tmp_path, kernel, harness):
        from repro.injection.runner import CampaignResults
        spec = make_spec(kernel, "crash_dump", 0, 0)
        results = CampaignResults("A", [harness.run_spec(spec)],
                                  {"note": "test"})
        path = tmp_path / "results.json"
        results.save(str(path))
        loaded = CampaignResults.load(str(path))
        assert loaded.campaign == "A"
        assert loaded.results[0].outcome == "not_activated"
        assert loaded.meta["note"] == "test"


class TestHarnessInfrastructure:
    def test_golden_runs_cached(self, harness):
        first = harness.golden("syscall")
        second = harness.golden("syscall")
        assert first is second
        assert first.boot_cycles > 0
        assert first.workload_cycles > 0

    def test_golden_coverage_is_post_boot(self, kernel, harness):
        golden = harness.golden("syscall")
        # mount_root runs only during boot; must not be in coverage.
        mount = kernel.symbols["mount_root"]
        assert mount not in golden.coverage
        # the syscall dispatcher definitely runs post-boot.
        assert kernel.symbols["do_system_call"] in golden.coverage

    def test_crash_overhead_is_small_constant(self, harness):
        overhead = harness.crash_overhead()
        assert 0 < overhead < 2000
        assert harness.crash_overhead() == overhead

    def test_latency_bucket_labels(self):
        assert latency_bucket(0) == "0-10"
        assert latency_bucket(9) == "0-10"
        assert latency_bucket(10) == "10-1e2"
        assert latency_bucket(12345) == "1e4-1e5"
        assert latency_bucket(1_000_000) == ">1e5"
        assert latency_bucket(None) is None
