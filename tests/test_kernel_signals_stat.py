"""Signals-lite delivery, stat() and sysinfo()."""

from tests.helpers import USER_PRELUDE, run_user_program


def run_prog(kernel, binaries, body, **kw):
    result = run_user_program(kernel, binaries, USER_PRELUDE + body, **kw)
    assert result.status == "shutdown", result.console
    return result


class TestSignals:
    def test_kill_terminates_spinning_child(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0) {
                for (;;)
                    sched_yield();      /* CPU-bound victim */
            }
            kill(pid, 9);
            status = -1;
            wait(&status);
            printn(status);             /* 128 + SIGKILL */
            reboot(0);
        }
        """, max_cycles=200_000_000)
        assert str(128 + 9) in result.console

    def test_kill_wakes_blocked_child(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int fds[2];
        int main() {
            int pid;
            int status;
            int buf[2];
            begin();
            pipe(fds);
            pid = fork();
            if (pid == 0) {
                read(fds[0], buf, 4);   /* blocks forever */
                exit(0);
            }
            sched_yield();              /* let the child block */
            kill(pid, 15);
            status = -1;
            wait(&status);
            printn(status);
            reboot(0);
        }
        """, max_cycles=200_000_000)
        assert str(128 + 15) in result.console

    def test_self_kill(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0) {
                kill(getpid(), 6);      /* abort() */
                print("UNREACHABLE\n");
                exit(0);
            }
            status = -1;
            wait(&status);
            printn(status);
            reboot(0);
        }
        """)
        assert str(128 + 6) in result.console
        assert "UNREACHABLE" not in result.console

    def test_kill_missing_pid_esrch(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            begin();
            printn(kill(77, 9));
            reboot(0);
        }
        """)
        assert "-3" in result.console

    def test_bad_signal_einval(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0)
                for (;;) sched_yield();
            printn(kill(pid, 0));
            kill(pid, 9);
            wait(&status);
            reboot(0);
        }
        """, max_cycles=200_000_000)
        assert "-22" in result.console


class TestStatSysinfo:
    def test_stat_regular_file(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int st[4];
        int main() {
            begin();
            if (stat("/etc/motd", st) < 0) {
                print("STAT FAIL\n");
                reboot(1);
            }
            printn(st[0]);      /* type: 1 = file */
            print(" ");
            printn(st[1]);      /* size */
            print(" ");
            printn(st[2]);      /* blocks */
            print("\n");
            reboot(0);
        }
        """)
        from repro.machine.disk import LIBC_CONTENT  # noqa: F401
        assert "1 34 1" in result.console  # motd is 34 bytes, 1 block

    def test_stat_directory(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int st[4];
        int main() {
            begin();
            stat("/bin", st);
            printn(st[0]);      /* 2 = directory */
            reboot(0);
        }
        """)
        assert "2" in result.console

    def test_stat_missing_enoent(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int st[4];
        int main() {
            begin();
            printn(stat("/nope", st));
            reboot(0);
        }
        """)
        assert "-2" in result.console

    def test_sysinfo_counters_sane(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int info[4];
        int main() {
            begin();
            sysinfo(info);
            /* free pages positive and below the total */
            printn(info[0] > 0 && info[0] <= info[1]);
            print(" ");
            printn(info[3] >= 1);   /* at least this task running */
            reboot(0);
        }
        """)
        assert "1 1" in result.console
