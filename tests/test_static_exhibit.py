"""The static_propagation exhibit and the ksymoops STATIC section."""

from types import SimpleNamespace

from repro.analysis.oops import static_verdict_section
from repro.experiments.static_propagation import (
    _rate,
    _spread_hit,
    _trap_hit,
    verdict_for,
)
from repro.injection.outcomes import InjectionResult
from repro.staticanalysis.propagation import (
    PropagationAnalyzer,
    SiteVerdict,
)


def _result(**overrides):
    fields = dict(campaign="A", function="getblk", subsystem="fs",
                  addr=0x1000, byte_offset=0, bit=0,
                  outcome="crash_dumped", crash_cause="null_pointer",
                  crash_subsystem="fs", latency=10)
    fields.update(overrides)
    return InjectionResult(**fields)


def _verdict(traps=("page_fault", "gpf", "silent"), lo=2, hi=None,
             subsystems=("fs",)):
    return SiteVerdict("CORRUPT_VALUE", traps, lo, hi, subsystems,
                       False)


class TestScoringHelpers:
    def test_trap_hit_inside_predicted_set(self):
        assert _trap_hit(_verdict(), _result(crash_cause="null_pointer"))
        assert not _trap_hit(_verdict(),
                             _result(crash_cause="invalid_opcode"))

    def test_out_of_vocabulary_cause_counts_as_contained(self):
        assert _trap_hit(_verdict(traps=("silent",)),
                         _result(crash_cause="kernel_panic"))

    def test_spread_hit_reachable_and_wild(self):
        assert _spread_hit(_verdict(subsystems=("fs", "mm")),
                           _result(crash_subsystem="mm"))
        assert not _spread_hit(_verdict(subsystems=("fs",)),
                               _result(subsystem="mm",
                                       crash_subsystem="kernel"))
        # a predicted wild jump covers any destination
        assert _spread_hit(_verdict(subsystems=("(wild)",)),
                           _result(crash_subsystem=None))

    def test_rate_formatting(self):
        assert _rate(0, 0) == "-"
        assert _rate(3, 4) == "3/4 (75%)"

    def test_verdict_for_prefers_recorded_prediction(self, kernel):
        analyzer = PropagationAnalyzer(kernel)
        recorded = _result(pred_traps=["gpf"], pred_latency_lo=7,
                           pred_latency_hi=9, pred_subsystems=["fs"],
                           pred_seed="CORRUPT_VALUE")
        verdict = verdict_for(analyzer, recorded)
        assert verdict.traps == frozenset(("gpf",))
        assert (verdict.latency_lo, verdict.latency_hi) == (7, 9)

    def test_verdict_for_computes_post_hoc(self, kernel):
        analyzer = PropagationAnalyzer(kernel)
        info = next(f for f in kernel.functions if f.name == "getblk")
        bare = _result(function="getblk", addr=info.start)
        verdict = verdict_for(analyzer, bare)
        assert verdict.traps


class TestKsymoopsStaticSection:
    def test_prediction_only_lines(self, kernel):
        info = next(f for f in kernel.functions
                    if f.name == "sync_buffers")
        lines = static_verdict_section(kernel, "sync_buffers",
                                       info.start, 0, 5)
        text = "\n".join(lines)
        assert "predicted traps:" in text
        assert "latency bound:" in text
        assert "reachable:" in text

    def test_actual_crash_and_latency_comparison(self, kernel):
        info = next(f for f in kernel.functions
                    if f.name == "sync_buffers")
        crash = SimpleNamespace(vector=14, cr2=0x10)  # null pointer
        lines = static_verdict_section(kernel, "sync_buffers",
                                       info.start, 0, 5, crash=crash,
                                       latency=25)
        text = "\n".join(lines)
        assert "actual trap:" in text
        assert "actual latency:   25 cycles" in text
