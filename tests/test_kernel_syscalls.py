"""Syscall-level behaviour, driven by purpose-built user programs."""

import pytest

from tests.helpers import USER_PRELUDE, run_user_program


def run_prog(kernel, binaries, body, **kw):
    source = USER_PRELUDE + body
    result = run_user_program(kernel, binaries, source, **kw)
    assert result.status == "shutdown", result.console
    return result


class TestFileSyscalls:
    def test_creat_write_read_roundtrip(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int buf[4];
            int fd;
            begin();
            fd = creat("/var/t.dat");
            write(fd, "hello", 5);
            close(fd);
            fd = open("/var/t.dat");
            read(fd, buf, 5);
            stb(buf + 5, 0);
            if (strcmp(buf, "hello") == 0)
                print("ROUNDTRIP OK\n");
            close(fd);
            reboot(0);
        }
        """)
        assert "ROUNDTRIP OK" in result.console

    def test_lseek_and_partial_reads(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int buf[4];
            int fd;
            begin();
            fd = creat("/var/t.dat");
            write(fd, "0123456789", 10);
            lseek(fd, 4, 0);
            read(fd, buf, 3);
            stb(buf + 3, 0);
            print(buf);             /* 456 */
            lseek(fd, -2, 2);
            read(fd, buf, 2);
            stb(buf + 2, 0);
            print(buf);             /* 89 */
            print("\n");
            reboot(0);
        }
        """)
        assert "45689" in result.console

    def test_unlink_removes_file(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int fd;
            begin();
            fd = creat("/var/gone.txt");
            write(fd, "x", 1);
            close(fd);
            unlink("/var/gone.txt");
            fd = open("/var/gone.txt");
            printn(fd);
            print("\n");
            reboot(0);
        }
        """)
        assert "-2" in result.console  # -ENOENT

    def test_open_missing_is_enoent(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            begin();
            printn(open("/does/not/exist"));
            reboot(0);
        }
        """)
        assert "-2" in result.console

    def test_bad_fd_is_ebadf(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int buf[2];
            begin();
            printn(read(7, buf, 4));
            print(" ");
            printn(write(200, buf, 4));
            reboot(0);
        }
        """)
        assert "-9 -9" in result.console

    def test_efault_on_kernel_pointer(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int fd;
            begin();
            fd = open("/etc/motd");
            printn(read(fd, 0xC0100000, 4));
            print(" ");
            printn(write(1, 0xC0100000, 4));
            reboot(0);
        }
        """)
        assert "-14 -14" in result.console  # -EFAULT twice

    def test_file_persists_on_disk_image(self, kernel, binaries):
        from repro.machine.disk import read_file
        result = run_prog(kernel, binaries, r"""
        int main() {
            int fd;
            begin();
            fd = creat("/var/persist.txt");
            write(fd, "DATA", 4);
            close(fd);
            sync();
            reboot(0);
        }
        """)
        assert read_file(result.disk_image, "/var/persist.txt") == b"DATA"


class TestProcessSyscalls:
    def test_fork_returns_zero_in_child(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0) {
                print("child\n");
                exit(7);
            }
            wait(&status);
            print("parent saw ");
            printn(status);
            print("\n");
            reboot(0);
        }
        """)
        assert "child" in result.console
        assert "parent saw 7" in result.console

    def test_cow_isolates_parent_and_child(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int shared = 100;
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0) {
                shared = 999;       /* must not affect the parent */
                exit(0);
            }
            wait(&status);
            printn(shared);
            print("\n");
            reboot(0);
        }
        """)
        assert "100" in result.console
        assert "999" not in result.console

    def test_wait_without_children(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int status;
            begin();
            printn(wait(&status));
            reboot(0);
        }
        """)
        assert "-10" in result.console  # -ECHILD

    def test_getpid_stable(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            begin();
            printn(getpid() == getpid());
            reboot(0);
        }
        """)
        assert "1" in result.console

    def test_brk_grows_heap(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int base;
            int p;
            begin();
            base = brk(0);
            brk(base + 8192);
            p = base + 5000;
            st(p, 1234);            /* demand-paged heap */
            printn(ld(p));
            print("\n");
            reboot(0);
        }
        """)
        assert "1234" in result.console

    def test_user_segfault_kills_process(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0) {
                st(4, 1);           /* near-NULL write */
                exit(0);
            }
            status = -1;
            wait(&status);
            printn(status);
            print("\n");
            reboot(0);
        }
        """)
        assert "139" in result.console
        assert "segfault at 00000004" in result.console

    def test_divide_error_kills_process(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int zero = 0;
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0) {
                printn(7 / zero);
                exit(0);
            }
            status = -1;
            wait(&status);
            printn(status);
            reboot(0);
        }
        """)
        assert str(128 + 8) in result.console  # SIGFPE

    def test_deep_user_recursion_grows_stack(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int depth(n) {
            int pad[16];
            pad[15] = n;
            if (n == 0)
                return 0;
            return depth(n - 1) + pad[15];
        }
        int main() {
            begin();
            printn(depth(200));     /* ~64 KB of frames, demand-paged */
            print("\n");
            reboot(0);
        }
        """)
        assert str(sum(range(201))) in result.console


class TestPipesAndIpc:
    def test_pipe_blocking_handoff(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int fds[2];
        int main() {
            int pid;
            int status;
            int word[1];
            begin();
            pipe(fds);
            pid = fork();
            if (pid == 0) {
                word[0] = 4242;
                write(fds[1], word, 4);
                exit(0);
            }
            word[0] = 0;
            read(fds[0], word, 4);
            wait(&status);
            printn(word[0]);
            reboot(0);
        }
        """)
        assert "4242" in result.console

    def test_read_from_closed_pipe_eof(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int fds[2];
        int main() {
            int word[1];
            begin();
            pipe(fds);
            close(fds[1]);
            printn(read(fds[0], word, 4));  /* EOF -> 0 */
            reboot(0);
        }
        """)
        assert "0" in result.console

    def test_sem_ping(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            begin();
            printn(sem_op(0));
            printn(sem_op(1));
            printn(net_ping(77) >= 0);
            reboot(0);
        }
        """)
        assert "001" in result.console

    def test_exec_replaces_image(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            int pid;
            int status;
            begin();
            pid = fork();
            if (pid == 0) {
                exec("/bin/nulltask");
                exit(99);           /* only on exec failure */
            }
            status = -1;
            wait(&status);
            printn(status);
            reboot(0);
        }
        """)
        assert "0" in result.console
        assert "99" not in result.console

    def test_exec_missing_binary_fails(self, kernel, binaries):
        result = run_prog(kernel, binaries, r"""
        int main() {
            begin();
            printn(exec("/bin/nothere"));
            reboot(0);
        }
        """)
        assert "-2" in result.console
