"""Decode-cache coherence: the property campaigns depend on.

An injected bit flip MUST invalidate any stale decode of the corrupted
bytes, and user-space remaps (exec) must never serve instructions from
the previous program.
"""

from repro.cpu.cpu import CPU
from repro.cpu.memory import MemoryBus, PageTableBuilder
from repro.isa.assembler import assemble


def flat_cpu(source, base=0x1000, ram=0x100000):
    program = assemble(source, base=base)
    bus = MemoryBus(ram)
    bus.phys_write_bytes(base, program.code)
    cpu = CPU(bus)
    cpu.eip = base
    cpu.regs[4] = 0x8000
    return cpu, program


class TestFlipInvalidation:
    def test_flip_after_first_execution_changes_behaviour(self):
        # Loop executes `add eax, 1` repeatedly; mid-run we flip the
        # immediate byte to 3. The cached decode must be dropped.
        source = """
_start:
    mov eax, 0
    mov ecx, 10
loop:
target:
    add eax, 1
    dec ecx
    jne loop
    hlt
"""
        cpu, program = flat_cpu(source)
        target = program.symbols["target"]
        from repro.cpu.cpu import CpuHalted, WatchdogExpired
        # run a few loop iterations (budget is in cycles)
        try:
            cpu.run(14)
        except (CpuHalted, WatchdogExpired):
            pass
        assert 0 < cpu.regs[0] < 10  # mid-loop
        # patch the immediate of `add eax, 1` (byte 2 of 83 c0 01)
        cpu.bus.phys_write(target + 2, 1, 3)
        try:
            cpu.run(10_000)
        except CpuHalted:
            pass
        # some iterations added 1, later ones added 3: total > 10
        assert cpu.regs[0] > 10

    def test_executed_store_invalidates_memoized_decode(self):
        # The program patches an instruction it has ALREADY executed
        # (and therefore memoized): the CPU's own store path must bump
        # the page generation so the next fetch re-decodes.  An
        # external phys_write doing so (the test above) is necessary
        # but not sufficient — injected faults arrive through hooks,
        # kernel self-modification arrives through executed stores.
        source = """
_start:
    mov eax, 0
    mov ecx, 6
loop:
    mov dword [patch + 2], %d
patch:
    add eax, 1
    nop
    dec ecx
    jne loop
    hlt
"""
        # The stored dword must rewrite only the immediate (patch+2)
        # and reproduce the following three bytes verbatim.
        prog = assemble(source % 0, base=0x1000)
        off = prog.symbols["patch"] - 0x1000 + 2
        tail = prog.code[off + 1:off + 4]
        newdw = int.from_bytes(bytes([3]) + tail, "little")

        cpu, _ = flat_cpu(source % newdw)
        from repro.cpu.cpu import CpuHalted
        try:
            cpu.run(1_000_000)
        except CpuHalted:
            pass
        # every iteration executed the patched `add eax, 3`
        assert cpu.regs[0] == 18

    def test_straddling_write_invalidates_second_page(self):
        # A write beginning on page 1 and ending on page 2 must bump
        # BOTH page generations: the patched instruction lives wholly
        # on page 2, so if only the first page were bumped its memo
        # entry would stay "valid" and serve the stale decode.
        source = """
loop:
target:
    add eax, 1
    dec ecx
    jne loop
    hlt
"""
        cpu, program = flat_cpu(source, base=0x2000)
        assert program.symbols["target"] == 0x2000
        cpu.regs[0] = 0
        cpu.regs[1] = 10
        from repro.cpu.cpu import CpuHalted, WatchdogExpired
        try:
            cpu.run(6)
        except (CpuHalted, WatchdogExpired):
            pass
        assert 0 < cpu.regs[0] < 10  # mid-loop, decode memoized
        # bytes 0x1FFF..0x2002: keep 0x1FFF..0x2001, imm 1 -> 3
        head = bytes(cpu.bus.ram[0x1FFF:0x2002])
        value = int.from_bytes(head + bytes([3]), "little")
        cpu.bus.phys_write(0x1FFF, 4, value)
        try:
            cpu.run(10_000)
        except CpuHalted:
            pass
        assert cpu.regs[0] > 10, \
            "second-page decode served stale after straddling write"

    def test_same_bytes_same_cache_when_untouched(self):
        source = """
_start:
    mov ecx, 100
loop:
    nop
    dec ecx
    jne loop
    hlt
"""
        cpu, _ = flat_cpu(source)
        from repro.cpu.cpu import CpuHalted
        try:
            cpu.run(100_000)
        except CpuHalted:
            pass
        # loop decoded once; cache has few entries
        assert len(cpu._dcache) < 20


class TestUserRemapCoherence:
    def test_tlb_generation_invalidates_user_decodes(self):
        # Map vaddr 0x10000 -> phys A (code: mov eax,1; hlt), run;
        # then remap to phys B (mov eax,2; hlt) with a TLB flush, and
        # re-run: the CPU must execute the NEW bytes.
        prog1 = assemble("mov eax, 1\nhlt", base=0x10000)
        prog2 = assemble("mov eax, 2\nhlt", base=0x10000)
        bus = MemoryBus(0x100000)
        bus.phys_write_bytes(0x20000, prog1.code)
        bus.phys_write_bytes(0x30000, prog2.code)
        builder = PageTableBuilder(bus, 0x8000)
        builder.map_range(0xC0000000, 0, 0x100000)
        builder.map_page(0x10000, 0x20000, user=True)
        builder.activate()

        from repro.cpu.cpu import CpuHalted
        cpu = CPU(bus)
        cpu.eip = 0x10000
        cpu.regs[4] = 0xC0008000  # unused
        try:
            cpu.run(100)
        except CpuHalted:
            pass
        assert cpu.regs[0] == 1

        # Remap (writes the PTE) + architectural flush.
        pde = bus.phys_read(builder.pgdir + (0x10000 >> 22) * 4, 4)
        table = pde & ~0xFFF
        pte_addr = table + ((0x10000 >> 12) & 0x3FF) * 4
        bus.phys_write(pte_addr, 4, 0x30000 | 0x7)
        bus.flush_tlb()

        cpu.eip = 0x10000
        try:
            cpu.run(cpu.cycles + 100)
        except CpuHalted:
            pass
        assert cpu.regs[0] == 2, \
            "stale decode served after remap + TLB flush"
