"""Static-analysis campaign planning: prune/prioritize, verdicts, resume."""

import pytest

from repro.injection.campaigns import (
    apply_static_verdicts,
    plan_campaign,
    select_targets,
)
from repro.injection.engine import CampaignEngine, EngineConfig
from repro.staticanalysis.predict import PRED_DEAD

#: Small deterministic slice shared by the planning tests.
PLAN = dict(seed=7, byte_stride=11)


@pytest.fixture(scope="module")
def targets(kernel, profile):
    return select_targets(kernel, profile, "A")


class TestPrunePrioritize:
    def test_prune_dead_drops_only_predicted_dead(self, kernel, targets):
        plain = plan_campaign(kernel, "A", targets, preclassify=True,
                              **PLAN)
        pruned = plan_campaign(kernel, "A", targets, prune_dead=True,
                               **PLAN)
        dead = [s for s in plain if s.pred_class == PRED_DEAD]
        assert len(pruned) == len(plain) - len(dead)
        assert all(s.pred_class != PRED_DEAD for s in pruned)

    def test_prioritize_is_a_stable_permutation(self, kernel, targets):
        plain = plan_campaign(kernel, "A", targets, preclassify=True,
                              **PLAN)
        ordered = plan_campaign(kernel, "A", targets, prioritize=True,
                                **PLAN)
        def key(s):
            return (s.function, s.instr_addr, s.byte_offset, s.bit)

        assert sorted(map(key, plain)) == sorted(map(key, ordered))
        # every predicted-dead site sorts after every other class
        classes = [s.pred_class for s in ordered]
        if PRED_DEAD in classes:
            first_dead = classes.index(PRED_DEAD)
            assert all(c == PRED_DEAD for c in classes[first_dead:])


class TestStaticVerdictPlanning:
    def test_static_verdicts_annotate_every_spec(self, kernel, targets):
        specs = plan_campaign(kernel, "A", targets,
                              static_verdicts=True, **PLAN)[:60]
        assert specs
        for spec in specs:
            assert spec.pred_traps
            assert spec.pred_seed is not None
            assert isinstance(spec.pred_subsystems, list)

    def test_prioritize_latency_orders_by_lower_bound(self, kernel,
                                                      targets):
        specs = plan_campaign(kernel, "A", targets,
                              prioritize_latency=True, **PLAN)
        crash_bounds = [s.pred_latency_lo or 0 for s in specs
                        if any(t != "silent"
                               for t in (s.pred_traps or ()))
                        and s.pred_latency_lo is not None]
        assert crash_bounds == sorted(crash_bounds)
        # silent-only predictions sink to the back of the plan
        kinds = [0 if any(t != "silent" for t in (s.pred_traps or ()))
                 else 1 for s in specs]
        assert kinds == sorted(kinds)

    def test_apply_static_verdicts_round_trips_spec_dicts(self, kernel,
                                                          targets):
        from repro.injection.campaigns import InjectionSpec
        spec = plan_campaign(kernel, "A", targets, **PLAN)[0]
        enriched = apply_static_verdicts(kernel, [spec])[0]
        clone = InjectionSpec.from_dict(enriched.to_dict())
        assert clone.pred_traps == enriched.pred_traps
        assert clone.pred_latency_lo == enriched.pred_latency_lo


class TestCliMain:
    def test_prune_and_prioritize_flags(self, capsys):
        from repro.injection.campaigns import main
        assert main(["--campaign", "A", "--scale", "tiny",
                     "--prune-dead", "--prioritize"]) == 0
        out = capsys.readouterr().out
        assert "planned injections" in out
        assert "PRED_DEAD sites pruned" in out
        assert "  PRED_DEAD " not in out

    def test_static_verdict_flags(self, capsys):
        from repro.injection.campaigns import main
        assert main(["--campaign", "A", "--scale", "tiny",
                     "--static-verdicts", "--prioritize-latency"]) == 0
        out = capsys.readouterr().out
        assert "static verdicts:" in out
        assert "ordered by predicted crash-latency" in out


class TestJournalResumeInteraction:
    """Planned-with-static-analysis campaigns must resume cleanly.

    The journal fingerprint covers only site coordinates, so pruning
    or prioritizing changes the fingerprint via the *plan*, while
    verdict enrichment must not change it at all.
    """

    def _run(self, harness, specs, journal_path, resume=False):
        engine = CampaignEngine(
            harness, EngineConfig(journal_path=journal_path,
                                  resume=resume))
        return engine.execute("C", specs, seed=PLAN["seed"],
                              byte_stride=PLAN["byte_stride"],
                              grade=False)

    @pytest.fixture(scope="class")
    def pruned_specs(self, kernel, profile):
        functions = select_targets(kernel, profile, "C")
        return plan_campaign(kernel, "C", functions, prune_dead=True,
                             prioritize=True, **PLAN)[:4]

    def test_pruned_prioritized_plan_resumes_exactly(self, harness,
                                                     pruned_specs,
                                                     tmp_path):
        journal_path = str(tmp_path / "campaign.jsonl")
        results, _ = self._run(harness, pruned_specs, journal_path)
        resumed, meta = self._run(harness, pruned_specs, journal_path,
                                  resume=True)
        assert meta["resumed_results"] == len(pruned_specs)
        assert ([r.to_dict() for r in resumed]
                == [r.to_dict() for r in results])

    def test_verdict_enrichment_does_not_change_fingerprint(
            self, kernel, harness, pruned_specs, tmp_path):
        journal_path = str(tmp_path / "campaign.jsonl")
        self._run(harness, pruned_specs, journal_path)
        enriched = apply_static_verdicts(
            kernel, [s.__class__.from_dict(s.to_dict())
                     for s in pruned_specs])
        resumed, meta = self._run(harness, enriched, journal_path,
                                  resume=True)
        assert meta["resumed_results"] == len(pruned_specs)
        for result in resumed:
            assert result.outcome is not None
