"""MMU, paging, TLB, and memory-bus behaviour."""

import pytest

from repro.cpu.memory import MemoryBus, PageTableBuilder, PTE_PRESENT, \
    PTE_RW, PTE_USER
from repro.cpu.traps import Trap, VEC_PAGE_FAULT


def make_bus():
    bus = MemoryBus(0x100000)
    return bus


class TestPhysical:
    def test_read_write_roundtrip(self):
        bus = make_bus()
        bus.phys_write(0x100, 4, 0xDEADBEEF)
        assert bus.phys_read(0x100, 4) == 0xDEADBEEF
        assert bus.phys_read(0x100, 1) == 0xEF

    def test_page_version_bumps_on_write(self):
        bus = make_bus()
        before = bus.page_versions[0]
        bus.phys_write(0x10, 1, 1)
        assert bus.page_versions[0] == before + 1

    def test_reads_beyond_ram_float_high(self):
        bus = make_bus()
        assert bus.phys_read(0x900000, 4) == 0xFFFFFFFF

    def test_writes_beyond_ram_ignored(self):
        bus = make_bus()
        bus.phys_write(0x900000, 4, 123)  # no exception


class TestPaging:
    def build(self, bus):
        builder = PageTableBuilder(bus, 0x8000)
        return builder

    def test_linear_map_translates(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_range(0xC0000000, 0, 0x100000)
        builder.activate()
        bus.phys_write(0x2000, 4, 0x1234)
        assert bus.read(0xC0002000, 4, False) == 0x1234

    def test_unmapped_page_faults(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_range(0xC0000000, 0, 0x100000)
        builder.activate()
        with pytest.raises(Trap) as info:
            bus.read(0x00001000, 4, False)
        assert info.value.vector == VEC_PAGE_FAULT
        assert info.value.cr2 == 0x1000
        assert info.value.error_code == 0  # not-present, read, kernel

    def test_user_cannot_touch_supervisor_page(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0xC0000000, 0, user=False)
        builder.activate()
        with pytest.raises(Trap) as info:
            bus.read(0xC0000000, 4, True)
        assert info.value.error_code & 4  # user bit
        assert info.value.error_code & 1  # protection, not missing

    def test_write_protect_applies_to_supervisor(self):
        # WP=1 semantics: kernel writes honour the R/W bit (COW path).
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0x1000, 0x5000, user=True, writable=False)
        builder.activate()
        assert bus.read(0x1000, 4, False) == 0
        with pytest.raises(Trap) as info:
            bus.write(0x1000, 4, 7, False)
        assert info.value.error_code & 2  # write

    def test_user_page_readable_by_user(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0x1000, 0x5000, user=True, writable=True)
        builder.activate()
        bus.write(0x1000, 4, 99, True)
        assert bus.read(0x1000, 4, True) == 99
        # ... and the write landed at the mapped physical page
        assert bus.phys_read(0x5000, 4) == 99

    def test_tlb_caches_translation(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0x1000, 0x5000, user=True)
        builder.activate()
        bus.read(0x1000, 4, False)
        assert 1 in bus.tlb

    def test_stale_tlb_until_invlpg(self):
        """The MMU honours the TLB even after the PTE changed."""
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0x1000, 0x5000, user=True)
        builder.map_range(0xC0000000, 0, 0x100000)
        builder.activate()
        bus.phys_write(0x5000, 4, 111)
        bus.phys_write(0x6000, 4, 222)
        assert bus.read(0x1000, 4, False) == 111
        # Remap 0x1000 -> 0x6000 by editing the PTE in RAM.
        pde = bus.phys_read(builder.pgdir + 0, 4)
        table = pde & ~0xFFF
        bus.phys_write(table + 4, 4, 0x6000 | PTE_PRESENT | PTE_RW
                       | PTE_USER)
        # TLB still holds the old mapping...
        assert bus.read(0x1000, 4, False) == 111
        bus.invlpg(0x1000)
        assert bus.read(0x1000, 4, False) == 222

    def test_cr3_load_flushes_tlb(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0x1000, 0x5000)
        pgdir = builder.activate()
        bus.read(0x1000, 4, False)
        assert bus.tlb
        bus.set_cr3(pgdir)
        assert not bus.tlb

    def test_wild_cr3_page_faults(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0x1000, 0x5000)
        builder.activate()
        bus.set_cr3(0xFFFFF000)  # points beyond RAM
        with pytest.raises(Trap) as info:
            bus.read(0x1000, 4, False)
        assert info.value.vector == VEC_PAGE_FAULT

    def test_cross_page_access(self):
        bus = make_bus()
        builder = self.build(bus)
        builder.map_page(0x1000, 0x5000)
        builder.map_page(0x2000, 0x7000)
        builder.activate()
        bus.write(0x1FFE, 4, 0xAABBCCDD, False)
        assert bus.phys_read(0x5FFE, 2) == 0xCCDD
        assert bus.phys_read(0x7000, 2) == 0xAABB
        assert bus.read(0x1FFE, 4, False) == 0xAABBCCDD


class TestDevices:
    def test_mmio_routing(self):
        from repro.cpu.devices import ConsoleDevice
        bus = make_bus()
        console = ConsoleDevice()
        bus.attach_device(0x200000, 0x100, console)
        bus.phys_write(0x200000, 1, ord("x"))
        assert console.text == "x"

    def test_disk_dma_roundtrip(self):
        from repro.cpu.devices import DiskDevice
        bus = make_bus()
        disk = DiskDevice(bus, b"\xAB" * 4096)
        bus.attach_device(0x210000, 0x100, disk)
        # read sector 2 (512 bytes) into phys 0x3000
        bus.phys_write(0x210000 + 0, 4, 2)
        bus.phys_write(0x210000 + 4, 4, 1)
        bus.phys_write(0x210000 + 8, 4, 0x3000)
        bus.phys_write(0x210000 + 12, 4, 1)
        assert bus.phys_read(0x210000 + 16, 4) == 0
        assert bus.phys_read(0x3000, 1) == 0xAB
        # write it back somewhere else
        bus.phys_write(0x3000, 1, 0x5A)
        bus.phys_write(0x210000 + 0, 4, 0)
        bus.phys_write(0x210000 + 12, 4, 2)
        assert disk.image[0] == 0x5A

    def test_disk_range_check(self):
        from repro.cpu.devices import DiskDevice
        bus = make_bus()
        disk = DiskDevice(bus, b"\x00" * 1024)
        bus.attach_device(0x210000, 0x100, disk)
        bus.phys_write(0x210000 + 0, 4, 99)   # beyond the image
        bus.phys_write(0x210000 + 4, 4, 1)
        bus.phys_write(0x210000 + 8, 4, 0)
        bus.phys_write(0x210000 + 12, 4, 1)
        assert bus.phys_read(0x210000 + 16, 4) == 1  # error status

    def test_dump_device_records(self):
        from repro.cpu.devices import DumpDevice
        bus = make_bus()
        dump = DumpDevice()
        bus.attach_device(0x220000, 0x100, dump)
        for value in (1, 2, 3):
            bus.phys_write(0x220000, 4, value)
        bus.phys_write(0x220004, 4, 1)
        assert dump.records == [[1, 2, 3]]

    def test_shutdown_device_raises(self):
        from repro.cpu.devices import MachineShutdown, ShutdownDevice
        bus = make_bus()
        bus.attach_device(0x230000, 0x100, ShutdownDevice())
        with pytest.raises(MachineShutdown) as info:
            bus.phys_write(0x230000, 4, 42)
        assert info.value.code == 42
