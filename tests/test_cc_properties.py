"""Property-based compiler correctness: MinC arithmetic == Python."""

from hypothesis import given, settings, strategies as st

from repro.cc import compile_single
from tests.helpers import FlatMachine
from tests.test_cc_compiler import HARNESS

M32 = 0xFFFFFFFF


def _sx(value):
    value &= M32
    return value - (1 << 32) if value >> 31 else value


class Expr:
    """A random expression with both MinC text and a Python evaluator."""

    def __init__(self, text, value):
        self.text = text
        self.value = value & M32


@st.composite
def exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(0, M32))
        return Expr(str(value), value)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>",
                               "<", "==", "&&", "||"]))
    left = draw(exprs(depth=depth + 1))
    right = draw(exprs(depth=depth + 1))
    lv, rv = left.value, right.value
    if op == "+":
        value = lv + rv
    elif op == "-":
        value = lv - rv
    elif op == "*":
        value = lv * rv
    elif op == "&":
        value = lv & rv
    elif op == "|":
        value = lv | rv
    elif op == "^":
        value = lv ^ rv
    elif op == "<<":
        rv &= 31
        value = lv << rv
        right = Expr(str(rv), rv)
    elif op == ">>":
        rv &= 31
        value = lv >> rv
        right = Expr(str(rv), rv)
    elif op == "<":
        value = 1 if _sx(lv) < _sx(rv) else 0
    elif op == "==":
        value = 1 if lv == rv else 0
    elif op == "&&":
        value = 1 if lv and rv else 0
    else:
        value = 1 if lv or rv else 0
    return Expr("(%s %s %s)" % (left.text, op, right.text), value)


def run_expr_batch(cases):
    """Evaluate many expressions in one compiled program (fast)."""
    body = []
    for i, case in enumerate(cases):
        body.append("results[%d] = %s;" % (i, case.text))
    source = """
    int results[%d];
    int main() {
        %s
        return 0;
    }
    """ % (len(cases), "\n        ".join(body))
    unit = compile_single(source)
    machine = FlatMachine(HARNESS % (unit.text, unit.data))
    machine.run(max_cycles=5_000_000)
    base = machine.symbol("results")
    return [machine.bus.phys_read(base + 4 * i, 4)
            for i in range(len(cases))]


@given(cases=st.lists(exprs(), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_compiled_arithmetic_matches_python(cases):
    got = run_expr_batch(cases)
    assert got == [case.value for case in cases]


@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_compiled_sort_matches_python(values):
    """A bubble sort in MinC sorts like Python (signed order)."""
    n = len(values)
    inits = ", ".join(str(v) for v in values)
    source = """
    int data[] = {%s};
    int main() {
        int i;
        int j;
        int tmp;
        for (i = 0; i < %d; i++)
            for (j = 0; j + 1 < %d - i; j++)
                if (data[j] > data[j + 1]) {
                    tmp = data[j];
                    data[j] = data[j + 1];
                    data[j + 1] = tmp;
                }
        return 0;
    }
    """ % (inits, n, n)
    unit = compile_single(source)
    machine = FlatMachine(HARNESS % (unit.text, unit.data))
    machine.run(max_cycles=5_000_000)
    base = machine.symbol("data")
    got = [_sx(machine.bus.phys_read(base + 4 * i, 4)) for i in range(n)]
    assert got == sorted(values)


@given(dividend=st.integers(-(2**31), 2**31 - 1),
       divisor=st.integers(-(2**31), 2**31 - 1).filter(lambda v: v != 0))
@settings(max_examples=60, deadline=None)
def test_signed_division_truncates(dividend, divisor):
    if dividend == -(2**31) and divisor == -1:
        return  # overflow traps, like real hardware
    source = """
    int main() { return (%d) / (%d); }
    """ % (dividend, divisor)
    unit = compile_single(source)
    machine = FlatMachine(HARNESS % (unit.text, unit.data))
    got = _sx(machine.run(max_cycles=100_000))
    assert got == int(dividend / divisor)
