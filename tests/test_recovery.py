"""In-kernel error recovery: fixup, oops-kill-continue, soft lockup.

The recovery ladder (docs/kernel.md) must (a) stay completely inert
when disabled — the fail-stop baseline is the paper's kernel — and
(b) when enabled, contain kernel faults by -EFAULT fixup, by killing
the oopsing task, or by the soft-lockup watchdog, with every recovered
run measured as CRASH_RECOVERED and sub-classified.
"""

import pytest

from repro.injection.campaigns import select_targets
from repro.injection.outcomes import CRASH_RECOVERED, RECOVERED_CLASSES
from repro.injection.runner import BOOT_MARKER, InjectionHarness
from repro.machine.machine import Machine, build_standard_disk
from repro.userland.build import build_program
from repro.userland.programs import PROGRAMS

UD2_NOP_NOP = 0x90900B0F      # ud2; nop; nop
JMP_SELF = 0x9090FEEB         # jmp $; nop; nop (wedges in-kernel)

SOFTLOCKUP_VECTOR = 253


@pytest.fixture(scope="module")
def recovery_harness(kernel, binaries, profile):
    return InjectionHarness(kernel, binaries, profile, recovery=True)


def run_init_program(kernel, binaries, source, recovery,
                     max_cycles=60_000_000):
    """Run MinC *source* as init, optionally under the recovery kernel."""
    PROGRAMS["_rectest"] = (source, 0)
    try:
        test_binaries = dict(binaries)
        test_binaries["init"] = build_program("_rectest", iters=0)
    finally:
        del PROGRAMS["_rectest"]
    machine = Machine(kernel, build_standard_disk(test_binaries, None))
    if recovery:
        machine.enable_recovery()
    return machine.run(max_cycles=max_cycles)


def patched_workload_run(kernel, binaries, patch_word,
                         workload="syscall"):
    """Boot a recovery machine, corrupt sys_getpid post-boot, run on."""
    machine = Machine(kernel, build_standard_disk(binaries, workload))
    machine.enable_recovery()
    machine.run_until_console(BOOT_MARKER)
    machine.write_word(kernel.symbols["sys_getpid"], patch_word)
    return machine.run(max_cycles=60_000_000)


class TestRecoveryPlumbing:
    def test_recovery_defaults_off(self, kernel, binaries):
        for name in ("recovery_enabled", "panic_on_oops",
                     "__copy_user", "__ex_table", "__ex_table_end"):
            assert name in kernel.symbols, name
        machine = Machine(kernel, build_standard_disk(binaries, None))
        assert machine.read_word(kernel.symbols["recovery_enabled"]) == 0
        assert machine.read_word(kernel.symbols["panic_on_oops"]) == 0
        machine.enable_recovery()
        assert machine.read_word(kernel.symbols["recovery_enabled"]) == 1

    def test_ex_table_brackets_copy_user(self, kernel, binaries):
        machine = Machine(kernel, build_standard_disk(binaries, None))
        table = kernel.symbols["__ex_table"]
        end = kernel.symbols["__ex_table_end"]
        assert end > table and (end - table) % 12 == 0
        start = machine.read_word(table)
        stop = machine.read_word(table + 4)
        landing = machine.read_word(table + 8)
        # the landing pad starts exactly where the covered range ends
        assert start < stop <= landing
        owner = kernel.find_function(start)
        assert owner is not None and owner.name == "__copy_user"
        assert kernel.find_function(landing).name == "__copy_user"


#: read() into an unmapped user pointer; -EFAULT -> reboot(42).
FIXUP_PROBE = r"""
int main() {
    int fd;
    int r;
    open("/dev/console");
    dup(0);
    dup(0);
    fd = open("/etc/motd");
    r = read(fd, 0x40000000, 8);
    if (r + 14 == 0)
        reboot(42);
    reboot(7);
    return 0;
}
"""


class TestExceptionFixup:
    def test_bad_user_pointer_returns_efault(self, kernel, binaries):
        result = run_init_program(kernel, binaries, FIXUP_PROBE,
                                  recovery=True)
        assert result.status == "shutdown"
        assert result.exit_code == 42
        assert not result.crashes  # fixup means no oops at all

    def test_disabled_kernel_keeps_failstop_behaviour(self, kernel,
                                                      binaries):
        result = run_init_program(kernel, binaries, FIXUP_PROBE,
                                  recovery=False)
        # the fail-stop kernel kills the faulting task instead; init
        # never reaches reboot(42).
        assert result.exit_code != 42


class TestOopsKillContinue:
    def test_ud2_in_syscall_kills_task_and_continues(self, kernel,
                                                     binaries):
        result = patched_workload_run(kernel, binaries, UD2_NOP_NOP)
        assert result.status == "shutdown"
        assert result.continued_after_dump
        dump = result.recovered_dumps[0]
        assert dump.vector == 6
        assert dump.recovered == 1
        assert dump.pid >= 2
        assert "Oops: recovered, killing pid" in result.console
        assert "INIT: workload exited status=137" in result.console

    def test_soft_lockup_watchdog_kills_wedged_task(self, kernel,
                                                    binaries):
        result = patched_workload_run(kernel, binaries, JMP_SELF)
        assert result.status == "shutdown"
        dump = result.recovered_dumps[0]
        assert dump.vector == SOFTLOCKUP_VECTOR
        assert dump.recovered == 2
        assert "BUG: soft lockup detected" in result.console
        assert "INIT: workload exited status=137" in result.console


class TestRecoveredClassification:
    def _bug_guard_spec(self, kernel):
        """The free_page BUG-guard reversal from test_injection_run."""
        from repro.isa.decoder import decode_all
        from tests.test_injection_run import make_spec
        info = next(f for f in kernel.functions
                    if f.name == "free_page")
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        instrs = decode_all(code, base=info.start)
        target = next(ins for i, ins in enumerate(instrs)
                      if ins.op == "jcc" and i + 1 < len(instrs)
                      and instrs[i + 1].op == "ud2")
        byte_offset = 1 if target.raw[0] == 0x0F else 0
        return make_spec(kernel, "free_page", byte_offset, 0,
                         campaign="C", mnemonic="jcc",
                         instr_addr=target.addr)

    def test_free_page_flip_is_crash_recovered(self, kernel,
                                               recovery_harness):
        result = recovery_harness.run_spec(self._bug_guard_spec(kernel))
        assert result.activated
        assert result.outcome == CRASH_RECOVERED
        # the persistent flip re-faults the dying task in its own
        # exit_mmap -> free_page cleanup; the T_OOPS guard makes that
        # second oops fatal, so this case recovers once then goes down.
        assert result.recovered_class == "later_crash"
        assert result.crash_cause == "invalid_opcode"
        assert result.crash_function == "free_page"
        assert result.latency is not None and result.latency >= 0
        # every recovered run gets an fsck severity grade
        assert result.severity in ("normal", "severe", "most_severe")
        assert result.fs_status is not None

    def test_baseline_harness_unchanged_by_recovery_code(self, kernel,
                                                         harness):
        result = harness.run_spec(self._bug_guard_spec(kernel))
        assert result.outcome == "crash_dumped"
        assert result.crash_cause == "invalid_opcode"


class TestRecoveryCampaign:
    """Acceptance: campaign A over fs has a nonzero recovered share,
    and the recovery path journals/parallelizes/resumes bit-identically
    (same engine guarantees as the fail-stop path)."""

    CAMPAIGN = dict(seed=7, byte_stride=60, max_specs=12, grade=False)

    @pytest.fixture(scope="class")
    def fs_functions(self, kernel, profile):
        functions = select_targets(kernel, profile, "A")
        return [f for f in functions if f.subsystem == "fs"]

    @pytest.fixture(scope="class")
    def expected(self, recovery_harness, fs_functions):
        return recovery_harness.run_campaign(
            "A", functions=fs_functions, **self.CAMPAIGN)

    def test_fs_campaign_has_recovered_share(self, expected):
        recovered = [r for r in expected.results
                     if r.outcome == CRASH_RECOVERED]
        assert recovered, "no CRASH_RECOVERED outcome in the fs slice"
        for result in recovered:
            assert result.recovered_class in RECOVERED_CLASSES
            assert result.crash_vector is not None

    def test_parallel_matches_serial(self, recovery_harness,
                                     fs_functions, expected):
        parallel = recovery_harness.run_campaign(
            "A", functions=fs_functions, jobs=2, **self.CAMPAIGN)
        assert [r.to_dict() for r in parallel.results] \
            == [r.to_dict() for r in expected.results]

    def test_resume_matches_uninterrupted(self, recovery_harness,
                                          fs_functions, expected,
                                          tmp_path):
        journal_path = str(tmp_path / "recovery.jsonl")

        def interrupt(done, total, result):
            if done == 4:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            recovery_harness.run_campaign(
                "A", functions=fs_functions, journal_path=journal_path,
                progress=interrupt, **self.CAMPAIGN)
        resumed = recovery_harness.run_campaign(
            "A", functions=fs_functions, journal_path=journal_path,
            resume=True, **self.CAMPAIGN)
        assert [r.to_dict() for r in resumed.results] \
            == [r.to_dict() for r in expected.results]
        assert resumed.meta["engine"]["resumed_results"] == 4
