"""Def/use model, liveness and reaching definitions (dataflow)."""

from repro.isa.assembler import assemble
from repro.isa.decoder import decode_all
from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.dataflow import (
    ALL_RESOURCES,
    instr_defs_uses,
    live_after_map,
    liveness,
    reaching_definitions,
)

BASE = 0x1000


def _decode_one(line):
    return decode_all(assemble(line, base=BASE).code, base=BASE)[0]


def _cfg(body, name="f"):
    prog = assemble(".func %s kernel\n%s:\n%s\n.endfunc"
                    % (name, name, body), base=BASE)
    info = next(i for i in prog.functions if i.name == name)
    return build_cfg(prog, info), prog


class TestInstrDefsUses:
    def test_mov_reg_imm_does_not_use_destination(self):
        eff = instr_defs_uses(_decode_one("mov eax, 5"))
        assert "eax" not in eff.uses
        assert "eax" in eff.must_defs
        assert not eff.may_defs - {"eax"}

    def test_mov_mem_dst_uses_address_registers_only(self):
        eff = instr_defs_uses(_decode_one("mov [ebx+8], eax"))
        assert {"eax", "ebx"} <= eff.uses
        assert eff.writes_mem and not eff.reads_mem
        assert not eff.must_defs

    def test_alu_uses_both_and_defs_flags(self):
        eff = instr_defs_uses(_decode_one("add eax, ebx"))
        assert {"eax", "ebx"} <= eff.uses
        assert {"eax", "cf", "zf", "sf", "of", "pf"} <= eff.must_defs

    def test_inc_preserves_carry(self):
        # The simulated CPU's inc/dec handler saves and restores CF.
        eff = instr_defs_uses(_decode_one("inc eax"))
        assert "cf" not in eff.may_defs
        assert "zf" in eff.must_defs

    def test_cmp_defs_flags_not_destination(self):
        eff = instr_defs_uses(_decode_one("cmp eax, ebx"))
        assert "eax" not in eff.may_defs
        assert "zf" in eff.must_defs

    def test_shift_by_cl_is_a_may_def(self):
        # Count 0 leaves everything (including flags) unwritten.
        eff = instr_defs_uses(_decode_one("shl eax, cl"))
        assert "ecx" in eff.uses
        assert "eax" in eff.may_defs
        assert "eax" not in eff.must_defs

    def test_jcc_reads_its_condition_flags(self):
        ins = decode_all(b"\x74\x00", base=BASE)[0]  # je
        eff = instr_defs_uses(ins)
        assert "zf" in eff.uses
        assert not eff.may_defs

    def test_call_is_side_effecting(self):
        ins = decode_all(b"\xe8\x00\x00\x00\x00", base=BASE)[0]
        eff = instr_defs_uses(ins)
        assert eff.side_effects


class TestLiveness:
    def test_dead_store_is_not_live(self):
        cfg, _ = _cfg("""
  mov eax, 5
  mov eax, 6
  mov [esi], eax
  ret""")
        live = live_after_map(cfg)
        instrs = list(cfg.instructions())
        assert "eax" not in live[instrs[0].addr]   # overwritten
        assert "eax" in live[instrs[1].addr]        # stored
        assert "esi" in live[instrs[0].addr]        # address reg

    def test_branch_arm_keeps_value_live(self):
        cfg, prog = _cfg("""
  mov ebx, 7
  test eax, eax
  jz skip
  mov [esi], ebx
skip:
  ret""")
        live = live_after_map(cfg)
        first = cfg.entry
        assert "ebx" in live[first]                 # used on one arm

    def test_loop_counter_stays_live(self):
        cfg, prog = _cfg("""
  mov ecx, 4
top:
  dec ecx
  jnz top
  ret""")
        live_in, live_out = liveness(cfg)
        top = prog.symbol("top")
        assert "ecx" in live_in[top]
        assert "ecx" in live_out[top]               # back edge

    def test_exit_assumes_everything_live(self):
        cfg, _ = _cfg("  mov eax, 5\n  ret")
        live = live_after_map(cfg)
        # Conservative: the caller may read anything after ret.
        assert "eax" in live[cfg.entry]

    def test_custom_exit_live_set(self):
        cfg, _ = _cfg("  mov eax, 5\n  mov ebx, 6\n  ret")
        live_in, _ = liveness(cfg, exit_live=frozenset({"eax"}))
        assert "ebx" not in live_in[cfg.entry]


class TestReachingDefinitions:
    def test_redefinition_kills_earlier_def(self):
        cfg, _ = _cfg("""
  mov eax, 5
  mov eax, 6
  mov [esi], eax
  ret""")
        reach_in, reach_out = reaching_definitions(cfg)
        block = cfg.blocks[cfg.entry]
        instrs = block.instrs
        eax_defs = {d for d in reach_out[cfg.entry] if d[1] == "eax"}
        assert eax_defs == {(instrs[1].addr, "eax")}

    def test_entry_has_synthetic_defs(self):
        cfg, _ = _cfg("  ret")
        reach_in, _ = reaching_definitions(cfg)
        assert ("<entry>", "eax") in reach_in[cfg.entry]

    def test_diamond_merges_both_defs(self):
        cfg, prog = _cfg("""
  test eax, eax
  jz other
  mov ebx, 1
  jmp join
other:
  mov ebx, 2
join:
  mov [esi], ebx
  ret""")
        reach_in, _ = reaching_definitions(cfg)
        join = prog.symbol("join")
        ebx_defs = {d for d in reach_in[join] if d[1] == "ebx"}
        assert len(ebx_defs) == 2
        assert all(d[0] != "<entry>" for d in ebx_defs)


class TestKernelImage:
    def test_liveness_converges_on_every_function(self, kernel):
        for info in kernel.functions:
            cfg = build_cfg(kernel, info)
            live_in, live_out = liveness(cfg)
            assert set(live_in) == set(cfg.blocks), info.name
            for start, block in cfg.blocks.items():
                assert live_in[start] <= ALL_RESOURCES
                assert live_out[start] <= ALL_RESOURCES
