"""Static differ: fingerprints, impact closure, dispatch resolution.

Covers the fingerprint layer of :mod:`repro.staticanalysis.delta`:
re-decode stability, the single-byte-edit property (hypothesis), the
function-level diff of the two canonical source edits, opacity
accounting, user-binary syscall scanning and syscall-dispatch
resolution — plus the propagation-summary cache keyed by composed
byte fingerprints (the satellite of the same PR).
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.kernel.build import KernelImage, build_kernel
from repro.staticanalysis.delta import (
    RECOVERY_GATE_EDIT,
    KernelFingerprints,
    _execution_cone,
    diff_kernels,
    fingerprint_kernel,
    issuable_syscalls,
    opaque_functions,
    resolve_syscall_dispatch,
    user_syscall_numbers,
)
from repro.staticanalysis.propagation import PropagationAnalyzer

#: Size-preserving one-function edit (imm8 before and after): only
#: ``sys_stat`` changes, nothing moves, the data section is untouched.
SYS_STAT_EDIT = (
    ("fs/vfs+ext2.c",
     "put_user(buf_user + 8, nblocks);",
     "put_user(buf_user + 9, nblocks);"),
)

#: Syscall numbers whose handlers no shipped user binary can issue
#: (``sys_ni_syscall``, ``sys_stat``, ``sys_brk``, ``sys_sched_yield``,
#: ``sys_kill``, ``sys_sysinfo``).
_UNISSUED = {0, 11, 16, 17, 18, 23}


@pytest.fixture(scope="module")
def prints(kernel):
    return fingerprint_kernel(kernel)


@pytest.fixture(scope="module")
def sys_stat_kernel():
    return build_kernel(source_edits=SYS_STAT_EDIT)


@pytest.fixture(scope="module")
def recovery_kernel():
    return build_kernel(source_edits=RECOVERY_GATE_EDIT)


@pytest.fixture(scope="module")
def reverse_reach(prints):
    """``{name: set(names whose forward closure contains name)}``."""
    reach = {}
    for name in prints.own:
        for member in prints._closure(name):
            reach.setdefault(member, set()).add(name)
    return reach


def _patched(kernel, offset, byte):
    code = bytearray(kernel.code)
    code[offset] = byte
    return KernelImage(bytes(code), kernel.base, kernel.symbols,
                       kernel.functions, kernel.layout,
                       kernel.source_lines)


# -- fingerprints -----------------------------------------------------


def test_fingerprints_stable_across_redecode(kernel, prints):
    again = KernelFingerprints(kernel)
    assert again.own == prints.own
    assert again.composed == prints.composed
    assert again.data == prints.data


def test_fingerprints_stable_across_rebuild(kernel, prints):
    rebuilt = fingerprint_kernel(build_kernel())
    assert rebuilt.own == prints.own
    assert rebuilt.composed == prints.composed


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_single_byte_edit_changes_exactly_one_own_fingerprint(
        kernel, prints, reverse_reach, data):
    """Flip one code byte: the containing function's own fingerprint
    changes, and exactly the transitive callers' composed ones do."""
    functions = [f for f in kernel.functions if f.end - f.start >= 4]
    info = data.draw(st.sampled_from(functions))
    offset = data.draw(st.integers(info.start - kernel.base,
                                   info.end - kernel.base - 1))
    flip = data.draw(st.integers(1, 255))
    patched = _patched(kernel, offset, kernel.code[offset] ^ flip)
    try:
        new = fingerprint_kernel(patched)
    except Exception:
        assume(False)
    own_changed = {n for n in prints.own if prints.own[n] != new.own[n]}
    assert own_changed == {info.name}
    composed_changed = {n for n in prints.composed
                        if prints.composed[n] != new.composed[n]}
    assert composed_changed == (reverse_reach.get(info.name, set())
                                | {info.name})


def test_data_edit_is_a_global_blocker(kernel, prints):
    data_start = kernel.symbols["__data_start"]
    patched = _patched(kernel, data_start - kernel.base + 8,
                       kernel.code[data_start - kernel.base + 8] ^ 1)
    diff = diff_kernels(kernel, patched)
    assert diff.data_changed
    assert any("data-section-changed" in reason
               for reason in diff.global_reasons)


# -- diffing the canonical edits --------------------------------------


def test_sys_stat_edit_diff(kernel, prints, sys_stat_kernel):
    diff = diff_kernels(prints, sys_stat_kernel)
    assert diff.changed == {"sys_stat"}
    assert not diff.moved
    assert not diff.data_changed
    assert not diff.global_reasons
    assert not diff.trap_impacted
    assert "sys_stat" in diff.impacted
    # Opaque functions are impacted by construction on any change.
    assert set(opaque_functions(kernel)) <= diff.impacted


def test_recovery_edit_diff(kernel, prints, recovery_kernel):
    diff = diff_kernels(prints, recovery_kernel)
    assert diff.changed == {"oops_recoverable"}
    assert not diff.moved
    assert not diff.global_reasons
    # The gate sits on the oops path: trap delivery is impacted.
    assert diff.trap_impacted


def test_identical_kernels_diff_empty(kernel, prints):
    diff = diff_kernels(prints, prints)
    assert not diff.any_change
    assert not diff.impacted
    assert not diff.global_reasons


# -- opacity ----------------------------------------------------------


def test_opaque_functions_counts_the_dispatcher(kernel):
    opaque = opaque_functions(kernel)
    assert "do_system_call" in opaque
    assert opaque["do_system_call"] == ["indirect call"]
    for reasons in opaque.values():
        assert reasons


# -- user syscall scanning + dispatch resolution ----------------------


def test_user_syscall_numbers_are_exact(binaries):
    for binary in binaries.values():
        numbers = user_syscall_numbers(binary)
        assert numbers is not None
        assert all(isinstance(n, int) and 0 <= n < 64
                   for n in numbers)


def test_issuable_syscalls_excludes_dead_handlers(binaries):
    numbers = issuable_syscalls(binaries)
    assert numbers
    assert not numbers & _UNISSUED


def test_resolve_syscall_dispatch(kernel, prints, binaries):
    full = resolve_syscall_dispatch(kernel, prints)
    assert "do_system_call" in full
    assert "sys_stat" in full["do_system_call"]
    restricted = resolve_syscall_dispatch(
        kernel, prints, numbers=issuable_syscalls(binaries))
    assert restricted["do_system_call"] < full["do_system_call"]
    assert "sys_stat" not in restricted["do_system_call"]


def test_execution_cone_respects_dispatch(kernel, prints, binaries):
    dispatch = resolve_syscall_dispatch(
        kernel, prints, numbers=issuable_syscalls(binaries))
    # Through the resolved dispatcher the cone closes without going
    # opaque — and never reaches the handlers no binary can issue.
    cone = _execution_cone(prints, {"do_system_call"}, dispatch)
    assert cone is not None
    assert "sys_stat" not in cone
    # Without the resolution the dispatcher's indirect call is a wall.
    assert _execution_cone(prints, {"do_system_call"}, {}) is None
    assert _execution_cone(prints, None, dispatch) is None


# -- satellite: summary cache keyed by composed byte fingerprint ------


def test_summary_cache_recomputes_only_the_edited_function(
        kernel, sys_stat_kernel):
    warm = PropagationAnalyzer(kernel)
    for info in kernel.functions:
        warm.summary(info.name)

    cold = PropagationAnalyzer(sys_stat_kernel)
    cold._summaries = dict(warm._summaries)  # transplanted warm cache
    computed = []
    original = cold._compute_summary

    def recording(info):
        computed.append(info.name)
        return original(info)

    cold._compute_summary = recording
    for info in sys_stat_kernel.functions:
        cold.summary(info.name)
    assert set(computed) == {"sys_stat"}


def test_summary_key_tracks_byte_closure(kernel, sys_stat_kernel):
    base = PropagationAnalyzer(kernel)
    edited = PropagationAnalyzer(sys_stat_kernel)
    assert base.summary_key("sys_stat") != edited.summary_key("sys_stat")
    assert base.summary_key("sys_getpid") == \
        edited.summary_key("sys_getpid")
    assert base.byte_fingerprint("sys_stat") != \
        edited.byte_fingerprint("sys_stat")
