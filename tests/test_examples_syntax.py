"""Examples and scripts must at least be valid, importable Python."""

import ast
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

FILES = sorted((ROOT / "examples").glob("*.py")) \
    + sorted((ROOT / "scripts").glob("*.py"))


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_parses_and_compiles(path):
    source = path.read_text()
    tree = ast.parse(source)
    compile(source, str(path), "exec")
    # every example documents itself
    assert ast.get_docstring(tree), "%s lacks a docstring" % path.name


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_has_main_guard(path):
    assert '__name__ == "__main__"' in path.read_text()
