"""Wilson intervals and proportion tests."""

import pytest

from repro.analysis.confidence import (
    format_intervals,
    outcome_intervals,
    proportion_diff_pvalue,
    wilson_interval,
)
from tests.test_analysis import make_result


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_narrows_with_more_data(self):
        low1, high1 = wilson_interval(30, 100)
        low2, high2 = wilson_interval(300, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_edge_counts(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and high < 0.15
        low, high = wilson_interval(50, 50)
        assert high == 1.0 and low > 0.85

    def test_empty_total(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_successes(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_confidence_widens(self):
        n95 = wilson_interval(30, 100, 0.95)
        n99 = wilson_interval(30, 100, 0.99)
        assert (n99[1] - n99[0]) > (n95[1] - n95[0])


class TestProportionTest:
    def test_identical_proportions_not_significant(self):
        assert proportion_diff_pvalue(30, 100, 60, 200) > 0.9

    def test_clear_difference_significant(self):
        assert proportion_diff_pvalue(10, 100, 70, 100) < 1e-6

    def test_degenerate_inputs(self):
        assert proportion_diff_pvalue(0, 0, 5, 10) == 1.0
        assert proportion_diff_pvalue(0, 10, 0, 10) == 1.0


class TestOutcomeIntervals:
    def sample(self):
        out = []
        out += [make_result(outcome="not_manifested")] * 6
        out += [make_result(outcome="crash_dumped",
                            crash_cause="gpf")] * 3
        out += [make_result(outcome="not_activated",
                            activated=False)] * 5
        return out

    def test_shares_over_activated_only(self):
        intervals = outcome_intervals(self.sample())
        share, low, high = intervals["not_manifested"]
        assert share == pytest.approx(6 / 9)
        assert low < share < high

    def test_format(self):
        text = format_intervals(self.sample())
        assert "Wilson" in text
        assert "not_manifested" in text
        assert "[" in text
