"""Bit-flip pre-classifier: unit semantics + dynamic validation."""

from repro.injection.outcomes import NOT_ACTIVATED, NOT_MANIFESTED
from repro.isa.assembler import assemble
from repro.staticanalysis.predict import (
    PRED_BRANCH_REVERSAL,
    PRED_CLASSES,
    PRED_DEAD,
    PRED_INVALID_OPCODE,
    PRED_LENGTH_CHANGE,
    PRED_UNKNOWN,
    PreClassifier,
)

BASE = 0x1000


def _classifier(body, name="f"):
    prog = assemble(".func %s kernel\n%s:\n%s\n.endfunc"
                    % (name, name, body), base=BASE)
    return PreClassifier(prog), prog


class TestClassifyFlip:
    def test_dead_immediate_write(self):
        # eax is overwritten before any use: flipping the first mov's
        # immediate provably cannot change behaviour.
        pre, prog = _classifier("""
  mov eax, 5
  mov eax, 6
  mov [esi], eax
  ret""")
        assert pre.classify_site("f", BASE, 3, 2) == PRED_DEAD

    def test_live_immediate_write_is_unknown(self):
        # Same flip on the *second* mov changes the stored value.
        pre, prog = _classifier("""
  mov eax, 5
  mov eax, 6
  mov [esi], eax
  ret""")
        assert pre.classify_site("f", BASE + 5, 3, 2) == PRED_UNKNOWN

    def test_redundant_encoding_is_dead(self):
        # 31 c0 (xor r/m,r) vs 33 c0 (xor r,r/m): direction bit with
        # both operands the same register decodes identically.
        pre, prog = _classifier("""
  xor eax, eax
  mov [esi], eax
  ret""")
        assert pre.classify_site("f", BASE, 0, 1) == PRED_DEAD

    def test_cmp_sub_flag_twin_with_dead_destination(self):
        # Opcode bit 4 turns cmp (39) into sub (29): identical flag
        # computation, and the gained register write hits a dead eax.
        pre, prog = _classifier("""
  cmp eax, ebx
  jz done
done:
  mov eax, 1
  mov [esi], eax
  ret""")
        assert pre.classify_site("f", BASE, 0, 4) == PRED_DEAD

    def test_opcode_width_flip_changes_length(self):
        # b8 (mov eax,imm32) -> b0 (mov al,imm8): stream desync.
        pre, prog = _classifier("""
  mov eax, 5
  mov [esi], eax
  ret""")
        assert pre.classify_site("f", BASE, 0, 3) == PRED_LENGTH_CHANGE

    def test_branch_condition_bit_is_reversal(self):
        pre, prog = _classifier("""
  test eax, eax
  jz done
  mov ebx, 1
done:
  ret""")
        jz_addr = BASE + 2
        assert pre.classify_site("f", jz_addr, 0, 0) \
            == PRED_BRANCH_REVERSAL

    def test_undefined_opcode_flip(self):
        # 0f af (imul) -> 0f ae: not decoded by this subset (#UD).
        pre, prog = _classifier("""
  imul eax, ebx
  mov [esi], eax
  ret""")
        assert pre.classify_site("f", BASE, 1, 0) \
            == PRED_INVALID_OPCODE

    def test_unknown_site_defaults_to_unknown(self):
        pre, prog = _classifier("  mov eax, 5\n  ret")
        # An address that is not an instruction start.
        assert pre.classify_site("f", BASE + 1, 0, 0) == PRED_UNKNOWN


class TestKernelImage:
    def test_every_fs_site_classifies(self, kernel):
        pre = PreClassifier(kernel)
        checked = 0
        for info in kernel.functions:
            if info.subsystem != "fs" or checked >= 500:
                continue
            _, _, instrs, _ = pre._function_state(info.name)
            for addr in sorted(instrs)[:10]:
                ins = instrs[addr]
                for byte_offset in range(ins.length):
                    verdict = pre.classify_site(info.name, addr,
                                                byte_offset, 5)
                    assert verdict in PRED_CLASSES
                    checked += 1
        assert checked


class TestDynamicValidation:
    def test_predicted_dead_sites_do_not_manifest(self, kernel,
                                                  harness):
        """Predicted-dead fs sites overwhelmingly end NOT_MANIFESTED.

        This is the soundness claim ``--prune-dead`` rests on, checked
        against the real harness on a small covered slice.
        """
        from repro.experiments.static_validation import dead_slice_specs

        class _Ctx:
            pass

        ctx = _Ctx()
        ctx.kernel = kernel
        ctx.harness = harness
        specs = dead_slice_specs(ctx, subsystem="fs", limit=10)
        assert len(specs) >= 5, "too few covered predicted-dead sites"
        activated = benign = 0
        for spec in specs:
            result = harness.run_spec(spec)
            if result.outcome == NOT_ACTIVATED:
                continue
            activated += 1
            if result.outcome == NOT_MANIFESTED:
                benign += 1
        assert activated >= 3, "slice produced too few activated runs"
        assert benign / activated >= 0.9, (benign, activated)
