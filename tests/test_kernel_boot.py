"""Kernel integration: boot, workloads, oops behaviour, determinism."""

import pytest

from repro.machine.machine import Machine, build_standard_disk
from repro.userland.programs import WORKLOADS

EXPECTED_OUTPUT = {
    "context1": "context1: token=20 child=0",
    "dhry": "dhry: sum=",
    "fstime": "fstime: sum=",
    "hanoi": "hanoi: moves=1533",
    "looper": "looper: 2 ok",
    "pipe": "pipe: sum=161280",
    "spawn": "spawn: 4 ok",
    "syscall": "syscall: 45 ok",
}


class TestBoot:
    def test_boot_banner_and_clean_shutdown(self, kernel, binaries):
        machine = Machine(kernel, build_standard_disk(binaries, None))
        result = machine.run(max_cycles=10_000_000)
        assert result.status == "shutdown"
        assert result.exit_code == 0
        assert "Linux version 2.4.19-repro" in result.console
        assert "INIT: version 2.84-sim booting" in result.console
        assert "INIT: no workload configured" in result.console

    def test_boot_is_deterministic(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        first = Machine(kernel, disk).run(max_cycles=60_000_000)
        second = Machine(kernel, disk).run(max_cycles=60_000_000)
        assert first.console == second.console
        assert first.cycles == second.cycles
        assert first.disk_image == second.disk_image

    def test_corrupt_libc_blocks_boot(self, kernel, binaries):
        # The paper's Table 5 case 1 signature.
        disk = build_standard_disk(
            binaries, None, extra_files={"/lib/libc.txt": b"short"})
        result = Machine(kernel, disk).run(max_cycles=10_000_000)
        assert result.status == "shutdown"
        assert result.exit_code == 86
        assert "file too short" in result.console

    def test_missing_init_panics(self, kernel, binaries):
        trimmed = {k: v for k, v in binaries.items() if k != "init"}
        disk = build_standard_disk(trimmed, None)
        machine = Machine(kernel, disk)
        result = machine.run(max_cycles=10_000_000)
        assert result.status in ("halted", "triple_fault")
        assert "No init found" in result.console
        assert result.crash is not None
        assert result.crash.vector == 254


@pytest.mark.parametrize("workload", WORKLOADS)
def test_workload_completes(kernel, binaries, workload):
    disk = build_standard_disk(binaries, workload)
    result = Machine(kernel, disk).run(max_cycles=120_000_000)
    assert result.status == "shutdown", result.console
    assert result.exit_code == 0
    assert EXPECTED_OUTPUT[workload] in result.console
    assert "INIT: workload exited status=0" in result.console


class TestMarkers:
    def test_run_until_console(self, kernel, binaries):
        disk = build_standard_disk(binaries, "syscall")
        machine = Machine(kernel, disk)
        machine.run_until_console("INIT: starting workload",
                                  max_cycles=10_000_000)
        boot_cycles = machine.cpu.cycles
        assert 0 < boot_cycles < 2_000_000
        result = machine.run(max_cycles=60_000_000)
        assert result.status == "shutdown"

    def test_filesystem_marked_clean_after_shutdown(self, kernel,
                                                    binaries):
        from repro.machine.disk import fsck
        disk = build_standard_disk(binaries, "fstime")
        result = Machine(kernel, disk).run(max_cycles=120_000_000)
        report = fsck(result.disk_image)
        assert report.status == "clean", report.issues

    def test_bootlog_written(self, kernel, binaries):
        from repro.machine.disk import read_file
        disk = build_standard_disk(binaries, "syscall")
        result = Machine(kernel, disk).run(max_cycles=60_000_000)
        assert read_file(result.disk_image, "/var/bootlog") == b"boot\n"
