"""Property-based tests on core substrates (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.cpu.memory import MemoryBus, PageTableBuilder
from repro.isa.assembler import assemble
from repro.isa.decoder import decode_all
from repro.machine.disk import fsck, list_dir, mkfs, read_file

# -- ext2lite ------------------------------------------------------------

names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_",
                min_size=1, max_size=12)
contents = st.binary(min_size=0, max_size=3000)


@given(files=st.dictionaries(names, contents, min_size=0, max_size=12))
@settings(max_examples=40, deadline=None)
def test_mkfs_read_file_roundtrip(files):
    paths = {"/data/" + name: data for name, data in files.items()}
    image = mkfs(paths, dirs=("/data",))
    for path, data in paths.items():
        assert read_file(image, path) == data
    report = fsck(image)
    assert report.status == "clean", report.issues
    listed = {name for name, _ in list_dir(image)}
    assert "data" in listed


@given(files=st.dictionaries(names, contents, min_size=1, max_size=6),
       flip=st.tuples(st.integers(0, 1023 * 1024 - 1), st.integers(0, 7)))
@settings(max_examples=40, deadline=None)
def test_fsck_never_crashes_on_corruption(files, flip):
    paths = {"/d/" + name: data for name, data in files.items()}
    image = bytearray(mkfs(paths, dirs=("/d",)))
    offset, bit = flip
    image[offset % len(image)] ^= 1 << bit
    report = fsck(bytes(image), repair=True)
    assert report.status in ("clean", "dirty", "inconsistent",
                             "unrecoverable")
    if report.repaired is not None:
        # repair output must itself be at worst inconsistent-free
        assert fsck(report.repaired).status in ("clean", "dirty",
                                                "inconsistent",
                                                "unrecoverable")


@given(size=st.integers(11 * 1024 + 1, 40 * 1024))
@settings(max_examples=10, deadline=None)
def test_indirect_files_roundtrip(size):
    payload = (b"0123456789abcdef" * ((size // 16) + 1))[:size]
    image = mkfs({"/d/fat": payload}, dirs=("/d",))
    assert read_file(image, "/d/fat") == payload
    assert fsck(image).status == "clean"


# -- MMU vs model -----------------------------------------------------------


@given(ops=st.lists(
    st.tuples(st.integers(0, 15),           # virtual page selector
              st.integers(0, 4095),         # offset
              st.integers(0, 0xFFFFFFFF),   # value
              st.booleans()),               # write?
    min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_paged_memory_matches_model(ops):
    bus = MemoryBus(0x100000)
    builder = PageTableBuilder(bus, 0x8000)
    # 16 user pages at 0x10000.., physically scattered
    phys_base = 0x40000
    for i in range(16):
        builder.map_page(0x10000 + i * 0x1000, phys_base + i * 0x1000,
                         user=True, writable=True)
    builder.activate()
    model = {}
    for page, offset, value, write in ops:
        vaddr = 0x10000 + page * 0x1000 + (offset & ~3)
        if write:
            bus.write(vaddr, 4, value, True)
            model[vaddr] = value
        else:
            got = bus.read(vaddr, 4, True)
            assert got == model.get(vaddr, 0)


# -- assembler relaxation ------------------------------------------------------


@given(gap=st.integers(0, 300), backward=st.booleans())
@settings(max_examples=60, deadline=None)
def test_branch_relaxation_targets_exact(gap, backward):
    if backward:
        source = "target:\n" + "nop\n" * gap + "je target\nret\n"
    else:
        source = "je target\n" + "nop\n" * gap + "target:\nret\n"
    program = assemble(source, base=0x4000)
    instrs = decode_all(program.code, base=0x4000)
    branch = next(i for i in instrs if i.op == "jcc")
    resolved = branch.addr + branch.length + branch.rel
    assert resolved == program.symbols["target"]
    # short form used whenever the displacement allows it
    if gap <= 100:
        assert branch.length == 2


@given(n_branches=st.integers(1, 12), spacing=st.integers(0, 40))
@settings(max_examples=30, deadline=None)
def test_many_branches_all_resolve(n_branches, spacing):
    lines = []
    for i in range(n_branches):
        lines.append("l%d:" % i)
        lines.append("jne l%d" % ((i + 1) % n_branches))
        lines.extend(["nop"] * spacing)
    lines.append("ret")
    program = assemble("\n".join(lines), base=0)
    instrs = decode_all(program.code, base=0)
    branches = [i for i in instrs if i.op == "jcc"]
    assert len(branches) == n_branches
    for i, branch in enumerate(branches):
        target = program.symbols["l%d" % ((i + 1) % n_branches)]
        assert branch.addr + branch.length + branch.rel == target
