"""Whole-pipeline determinism: same seed, same outcomes, bit for bit."""

import pytest


def test_campaign_slice_is_deterministic(harness):
    from repro.injection.campaigns import plan_campaign, select_targets
    functions = select_targets(harness.kernel, harness.profile, "C")
    specs = plan_campaign(harness.kernel, "C", functions)[:25]

    def run_once():
        rows = []
        for spec in specs:
            result = harness.run_spec(spec, grade=False)
            rows.append((result.outcome, result.crash_cause,
                         result.latency, result.crash_eip,
                         result.run_cycles))
        return rows

    first = run_once()
    second = run_once()
    assert first == second


class TestTracedCampaignDeterminism:
    """Serial, parallel and resumed traced campaigns must agree.

    The trace-derived divergence metrics ride the same engine paths as
    every other result field (worker pickling, journal JSON,
    resume-from-journal), so all three execution modes must produce
    them bit-identically.
    """

    # The tiny-scale campaign-A plan: its head is known to contain
    # activated runs and dumped crashes (the C slice the engine tests
    # share is all not-activated, which would leave nothing to check).
    CAMPAIGN = dict(seed=2003, byte_stride=40, max_specs=8,
                    grade=False)

    def trace_metrics(self, campaign_results):
        return [
            (r.trace_diverged, r.trace_divergence_cycle,
             r.trace_divergence_eip,
             r.trace_flip_to_divergence_cycles,
             r.trace_flip_to_divergence_instrs,
             r.trace_divergence_to_trap_cycles,
             r.trace_subsystems, r.trace_dropped_events,
             r.trace_complete)
            for r in campaign_results.results
        ]

    @pytest.fixture(scope="class")
    def serial(self, traced_harness):
        return traced_harness.run_campaign("A", **self.CAMPAIGN)

    def test_traced_campaign_measures_something(self, serial):
        metrics = self.trace_metrics(serial)
        assert any(m[0] for m in metrics)  # at least one divergence

    def test_parallel_matches_serial(self, traced_harness, serial):
        parallel = traced_harness.run_campaign("A", jobs=2,
                                               **self.CAMPAIGN)
        assert self.trace_metrics(parallel) == self.trace_metrics(serial)
        assert ([r.to_dict() for r in parallel.results]
                == [r.to_dict() for r in serial.results])

    def test_resume_matches_serial(self, traced_harness, serial,
                                   tmp_path):
        journal_path = str(tmp_path / "traced.jsonl")

        def interrupt(done, total, result):
            if done == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            traced_harness.run_campaign("A", journal_path=journal_path,
                                        progress=interrupt,
                                        **self.CAMPAIGN)
        resumed = traced_harness.run_campaign("A",
                                              journal_path=journal_path,
                                              resume=True,
                                              **self.CAMPAIGN)
        assert resumed.meta["engine"]["resumed_results"] == 3
        assert self.trace_metrics(resumed) == self.trace_metrics(serial)
