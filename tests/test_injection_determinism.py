"""Whole-pipeline determinism: same seed, same outcomes, bit for bit."""

import json

import pytest


def test_campaign_slice_is_deterministic(harness):
    from repro.injection.campaigns import plan_campaign, select_targets
    functions = select_targets(harness.kernel, harness.profile, "C")
    specs = plan_campaign(harness.kernel, "C", functions)[:25]

    def run_once():
        rows = []
        for spec in specs:
            result = harness.run_spec(spec, grade=False)
            rows.append((result.outcome, result.crash_cause,
                         result.latency, result.crash_eip,
                         result.run_cycles))
        return rows

    first = run_once()
    second = run_once()
    assert first == second


class TestTracedCampaignDeterminism:
    """Serial, parallel and resumed traced campaigns must agree.

    The trace-derived divergence metrics ride the same engine paths as
    every other result field (worker pickling, journal JSON,
    resume-from-journal), so all three execution modes must produce
    them bit-identically.
    """

    # The tiny-scale campaign-A plan: its head is known to contain
    # activated runs and dumped crashes (the C slice the engine tests
    # share is all not-activated, which would leave nothing to check).
    CAMPAIGN = dict(seed=2003, byte_stride=40, max_specs=8,
                    grade=False)

    def trace_metrics(self, campaign_results):
        return [
            (r.trace_diverged, r.trace_divergence_cycle,
             r.trace_divergence_eip,
             r.trace_flip_to_divergence_cycles,
             r.trace_flip_to_divergence_instrs,
             r.trace_divergence_to_trap_cycles,
             r.trace_subsystems, r.trace_dropped_events,
             r.trace_complete)
            for r in campaign_results.results
        ]

    @pytest.fixture(scope="class")
    def serial(self, traced_harness):
        return traced_harness.run_campaign("A", **self.CAMPAIGN)

    def test_traced_campaign_measures_something(self, serial):
        metrics = self.trace_metrics(serial)
        assert any(m[0] for m in metrics)  # at least one divergence

    def test_parallel_matches_serial(self, traced_harness, serial):
        parallel = traced_harness.run_campaign("A", jobs=2,
                                               **self.CAMPAIGN)
        assert self.trace_metrics(parallel) == self.trace_metrics(serial)
        assert ([r.to_dict() for r in parallel.results]
                == [r.to_dict() for r in serial.results])

    def test_resume_matches_serial(self, traced_harness, serial,
                                   tmp_path):
        journal_path = str(tmp_path / "traced.jsonl")

        def interrupt(done, total, result):
            if done == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            traced_harness.run_campaign("A", journal_path=journal_path,
                                        progress=interrupt,
                                        **self.CAMPAIGN)
        resumed = traced_harness.run_campaign("A",
                                              journal_path=journal_path,
                                              resume=True,
                                              **self.CAMPAIGN)
        assert resumed.meta["engine"]["resumed_results"] == 3
        assert self.trace_metrics(resumed) == self.trace_metrics(serial)


class TestFaultModelDeterminism:
    """One campaign per pluggable fault model, three execution modes.

    Every model's parameters ride the spec's ``fault_model`` dict
    through worker pickling, journal JSON and resume; serial, parallel
    and interrupted-then-resumed runs must agree bit for bit.
    """

    CAMPAIGN = dict(seed=2003, max_specs=5, grade=False)

    @staticmethod
    def _run(harness, kind, **kwargs):
        from repro.injection.faultmodels import run_fault_model_campaign
        merged = dict(TestFaultModelDeterminism.CAMPAIGN)
        merged.update(kwargs)
        return run_fault_model_campaign(harness, kind, **merged)

    @pytest.fixture(scope="class")
    def serials(self, harness):
        from repro.injection.faultmodels import FAULT_KINDS
        return {kind: self._run(harness, kind) for kind in FAULT_KINDS}

    @pytest.mark.parametrize("kind",
                             ("disk", "intermittent", "mem", "reg_trap"))
    def test_parallel_matches_serial(self, harness, serials, kind):
        parallel = self._run(harness, kind, jobs=2)
        assert ([r.to_dict() for r in parallel.results]
                == [r.to_dict() for r in serials[kind].results])

    @pytest.mark.parametrize("kind",
                             ("disk", "intermittent", "mem", "reg_trap"))
    def test_translated_matches_serial(self, translated_harness,
                                       serials, kind):
        # The translated fast path is a fourth execution mode: the
        # same campaign through the block cache must reproduce the
        # interpreter's results bit for bit, fault model included.
        translated = self._run(translated_harness, kind)
        assert ([r.to_dict() for r in translated.results]
                == [r.to_dict() for r in serials[kind].results])

    @pytest.mark.parametrize("kind",
                             ("disk", "intermittent", "mem", "reg_trap"))
    def test_resume_matches_serial(self, harness, serials, kind,
                                   tmp_path):
        journal_path = str(tmp_path / ("%s.jsonl" % kind))

        def interrupt(done, total, result):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            self._run(harness, kind, journal_path=journal_path,
                      progress=interrupt)
        resumed = self._run(harness, kind, journal_path=journal_path,
                            resume=True)
        assert resumed.meta["engine"]["resumed_results"] == 2
        assert ([r.to_dict() for r in resumed.results]
                == [r.to_dict() for r in serials[kind].results])


class TestEquivalenceDeterminism:
    """Equivalence-pruned campaigns, three execution modes.

    Pilot selection, audit draws, impure-class splitting and the
    extrapolated records all derive from the seed and the static
    partition, so serial, parallel and interrupted-then-resumed runs
    must agree bit for bit — including the ``extrapolated`` provenance
    blocks in the journal.
    """

    # The C slice is dormancy-heavy (see above), so classes collapse
    # per workload and a real fraction of the plan is extrapolated
    # rather than injected.
    CAMPAIGN = dict(seed=2003, byte_stride=3, max_specs=18, grade=False,
                    equivalence=True)

    @pytest.fixture(scope="class")
    def serial(self, harness, tmp_path_factory):
        journal = str(tmp_path_factory.mktemp("equiv-serial")
                      / "serial.jsonl")
        return harness.run_campaign("C", journal_path=journal,
                                    **self.CAMPAIGN)

    def test_campaign_extrapolates_something(self, serial):
        assert serial.meta["equivalence"]["extrapolated"] >= 1

    def test_parallel_matches_serial(self, harness, serial, tmp_path):
        journal = str(tmp_path / "parallel.jsonl")
        parallel = harness.run_campaign("C", jobs=2,
                                        journal_path=journal,
                                        **self.CAMPAIGN)
        assert ([r.to_dict() for r in parallel.results]
                == [r.to_dict() for r in serial.results])
        assert (parallel.meta["equivalence"]
                == serial.meta["equivalence"])

    def test_resume_matches_serial(self, harness, serial, tmp_path):
        from repro.staticanalysis.equivalence import \
            journal_extrapolation
        journal = str(tmp_path / "resume.jsonl")

        def interrupt(done, total, result):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            harness.run_campaign("C", journal_path=journal,
                                 progress=interrupt, **self.CAMPAIGN)
        resumed = harness.run_campaign("C", journal_path=journal,
                                       resume=True, **self.CAMPAIGN)
        assert ([r.to_dict() for r in resumed.results]
                == [r.to_dict() for r in serial.results])
        assert (resumed.meta["equivalence"]
                == serial.meta["equivalence"])
        census = journal_extrapolation(journal)
        assert census["malformed"] == 0
        assert (census["extrapolated"]
                == serial.meta["equivalence"]["extrapolated"])


def test_pre_framework_journal_resumes(harness, tmp_path):
    """A v1 journal (no schema_version, no fault fields) resumes cleanly.

    Simulated by journaling a default instruction-flip campaign and
    stripping every post-v1 artifact from the file; the plan
    fingerprint is unchanged (the default model adds nothing to it),
    so newer code must load the old records and only run the rest.
    """
    campaign = dict(seed=2003, byte_stride=40, max_specs=6, grade=False)
    serial = harness.run_campaign("A", **campaign)
    journal_path = str(tmp_path / "v1.jsonl")

    def interrupt(done, total, result):
        if done == 3:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        harness.run_campaign("A", journal_path=journal_path,
                             progress=interrupt, **campaign)
    lines = open(journal_path).read().splitlines()
    header = json.loads(lines[0])
    assert header.pop("schema_version") is not None
    rewritten = [json.dumps(header)]
    for line in lines[1:]:
        record = json.loads(line)
        record["result"].pop("fault_model", None)
        record["result"].pop("fault_target", None)
        rewritten.append(json.dumps(record))
    with open(journal_path, "w") as fh:
        fh.write("\n".join(rewritten) + "\n")

    resumed = harness.run_campaign("A", journal_path=journal_path,
                                   resume=True, **campaign)
    assert resumed.meta["engine"]["resumed_results"] == 3
    assert ([r.to_dict() for r in resumed.results]
            == [r.to_dict() for r in serial.results])
