"""Whole-pipeline determinism: same seed, same outcomes, bit for bit."""


def test_campaign_slice_is_deterministic(harness):
    from repro.injection.campaigns import plan_campaign, select_targets
    functions = select_targets(harness.kernel, harness.profile, "C")
    specs = plan_campaign(harness.kernel, "C", functions)[:25]

    def run_once():
        rows = []
        for spec in specs:
            result = harness.run_spec(spec, grade=False)
            rows.append((result.outcome, result.crash_cause,
                         result.latency, result.crash_eip,
                         result.run_cycles))
        return rows

    first = run_once()
    second = run_once()
    assert first == second
