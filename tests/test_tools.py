"""CLI tools: objdump and ksymoops equivalents."""

import io

from repro.tools.objdump import disassemble_function


class TestObjdump:
    def test_disassembles_named_function(self, kernel):
        info = next(f for f in kernel.functions if f.name == "schedule")
        out = io.StringIO()
        disassemble_function(kernel, info, out=out)
        text = out.getvalue()
        assert "<schedule>:" in text
        assert "push %ebp" in text
        assert "ret" in text

    def test_main_list(self, capsys, monkeypatch):
        import repro.tools.objdump as objdump
        import repro.kernel.build as kbuild
        # reuse the session kernel instead of rebuilding
        monkeypatch.setattr(objdump, "build_kernel", kbuild.build_kernel)
        assert objdump.main(["--list", "--subsystem", "ipc"]) == 0
        out = capsys.readouterr().out
        assert "sys_ipc" in out

    def test_main_unknown_function_errors(self, capsys):
        import pytest
        import repro.tools.objdump as objdump
        with pytest.raises(SystemExit):
            objdump.main(["not_a_function"])


class TestKsymoopsFlow:
    def test_annotated_injection_produces_report(self, kernel, binaries,
                                                 capsys):
        """Drive the same flow the CLI wraps, against session fixtures."""
        from repro.analysis.oops import annotate_crash
        from repro.injection.runner import BOOT_MARKER
        from repro.machine.machine import Machine, build_standard_disk

        machine = Machine(kernel,
                          build_standard_disk(binaries, "syscall"))
        machine.run_until_console(BOOT_MARKER)
        info = next(f for f in kernel.functions
                    if f.name == "do_system_call")
        # push ebp -> 0x15 two-byte adc: derails the dispatcher
        machine.arm_breakpoint(info.start,
                               lambda m: m.flip_bit(info.start, 6))
        result = machine.run(max_cycles=60_000_000)
        if result.crash is not None:
            report = annotate_crash(kernel, result.crash,
                                    machine=machine)
            assert "EIP:" in report
            assert "Code:" in report


class TestFsckCli:
    def test_clean_image(self, tmp_path, binaries, capsys):
        from repro.machine.machine import build_standard_disk
        from repro.tools.fsck import main
        path = tmp_path / "disk.img"
        path.write_bytes(build_standard_disk(binaries, None))
        assert main([str(path)]) == 0
        assert "status: clean" in capsys.readouterr().out

    def test_damaged_image_with_repair(self, tmp_path, binaries, capsys):
        import struct
        from repro.machine.machine import build_standard_disk
        from repro.tools.fsck import main
        disk = bytearray(build_standard_disk(binaries, None))
        struct.pack_into("<I", disk, 8 * 4, 0)     # dirty
        path = tmp_path / "disk.img"
        path.write_bytes(bytes(disk))
        out_path = tmp_path / "fixed.img"
        code = main([str(path), "--repair", str(out_path)])
        assert code == 1
        assert main([str(out_path)]) == 0
