"""The fault-tolerant campaign engine.

Serial, parallel and killed-and-resumed executions of the same plan
must produce identical results; harness faults must surface as
HARNESS_ERROR outcomes with repro bundles instead of aborting the
campaign; worker deaths must cost one retried experiment, never the
run.
"""

import json
import os
import signal

import pytest

from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.engine import (
    KIND_WORKER_DIED,
    CampaignJournal,
    JournalMismatch,
)
from repro.injection.outcomes import HARNESS_ERROR

#: One small, fully deterministic campaign slice shared by every test.
CAMPAIGN = dict(seed=7, byte_stride=3, max_specs=6, grade=False)


def run_campaign(harness, **overrides):
    kwargs = dict(CAMPAIGN)
    kwargs.update(overrides)
    return harness.run_campaign("C", **kwargs)


def result_dicts(campaign_results):
    return [r.to_dict() for r in campaign_results.results]


def core_meta(campaign_results):
    """Campaign metadata minus the per-run execution telemetry."""
    return {k: v for k, v in campaign_results.meta.items()
            if k != "engine"}


def planned_specs(harness):
    functions = select_targets(harness.kernel, harness.profile, "C")
    return plan_campaign(harness.kernel, "C", functions,
                         seed=CAMPAIGN["seed"],
                         byte_stride=CAMPAIGN["byte_stride"]
                         )[:CAMPAIGN["max_specs"]]


def match(spec, target):
    return (spec.instr_addr == target.instr_addr
            and spec.byte_offset == target.byte_offset
            and spec.bit == target.bit)


@pytest.fixture(scope="module")
def expected(harness):
    """The reference serial execution of the shared campaign slice."""
    return run_campaign(harness)


class TestParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self, harness,
                                                 expected):
        parallel = run_campaign(harness, jobs=3)
        assert result_dicts(parallel) == result_dicts(expected)
        assert core_meta(parallel) == core_meta(expected)
        assert parallel.meta["engine"]["mode"] == "parallel"
        assert parallel.meta["engine"]["worker_failures"] == 0

    def test_single_job_reports_serial_mode(self, expected):
        engine = expected.meta["engine"]
        assert engine["mode"] == "serial"
        assert engine["degraded"] is False


class TestJournalAndResume:
    def test_interrupted_campaign_resumes_exactly(self, harness,
                                                  expected, tmp_path):
        journal_path = str(tmp_path / "campaign.jsonl")

        def interrupt(done, total, result):
            if done == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(harness, journal_path=journal_path,
                         progress=interrupt)
        # the journal survived the interrupt with the completed work
        lines = open(journal_path).read().splitlines()
        assert json.loads(lines[0])["type"] == "header"
        assert len(lines) == 1 + 3
        resumed = run_campaign(harness, journal_path=journal_path,
                               resume=True)
        assert result_dicts(resumed) == result_dicts(expected)
        assert resumed.meta["engine"]["resumed_results"] == 3
        # no duplicate or missing spec indices across both runs
        indices = [json.loads(line)["index"]
                   for line in open(journal_path).read().splitlines()[1:]]
        assert sorted(indices) == list(range(CAMPAIGN["max_specs"]))

    def test_torn_trailing_write_is_tolerated(self, harness, expected,
                                              tmp_path):
        journal_path = str(tmp_path / "campaign.jsonl")
        run_campaign(harness, journal_path=journal_path)
        with open(journal_path, "a") as fh:
            fh.write('{"type": "result", "index": 1, "resu')  # torn
        resumed = run_campaign(harness, journal_path=journal_path,
                               resume=True)
        assert result_dicts(resumed) == result_dicts(expected)

    def test_writer_sigkilled_mid_record_truncates_and_resumes(
            self, harness, expected, tmp_path):
        """A journal writer killed mid-record leaves a torn line; the
        resume must drop it, physically truncate it, and re-run only
        what the tear ate."""
        import multiprocessing
        journal_path = str(tmp_path / "campaign.jsonl")

        def doomed():
            def tear(done, total, result):
                if done == 2:
                    # Mimic the in-flight write the SIGKILL interrupts:
                    # half a record, no newline, then death.
                    with open(journal_path, "a") as fh:
                        fh.write('{"type": "result", "index": 2, "re')
                        fh.flush()
                    os.kill(os.getpid(), signal.SIGKILL)

            run_campaign(harness, journal_path=journal_path,
                         progress=tear)

        ctx = multiprocessing.get_context("fork")
        writer = ctx.Process(target=doomed)
        writer.start()
        writer.join(timeout=120)
        assert writer.exitcode == -signal.SIGKILL
        raw = open(journal_path).read()
        assert not raw.endswith("\n")       # the tear really is there
        resumed = run_campaign(harness, journal_path=journal_path,
                               resume=True)
        assert result_dicts(resumed) == result_dicts(expected)
        assert resumed.meta["engine"]["resumed_results"] == 2
        # the torn bytes were physically truncated, not appended onto
        lines = open(journal_path).read().splitlines()
        assert all(json.loads(line) for line in lines)
        indices = [json.loads(line)["index"] for line in lines[1:]]
        assert sorted(indices) == list(range(CAMPAIGN["max_specs"]))

    def test_journal_load_dedups_replayed_indices(self, harness,
                                                  expected, tmp_path):
        """Duplicate records for one index are legal (retried shards
        replay work) and resolve first-wins, except a HARNESS_ERROR
        placeholder loses to a real replayed result."""
        from repro.injection.engine import (
            harness_error_result,
            plan_fingerprint,
        )
        specs = planned_specs(harness)
        fingerprint = plan_fingerprint("C", specs, CAMPAIGN["seed"],
                                       CAMPAIGN["byte_stride"])
        real = expected.results[1]
        placeholder = harness_error_result(specs[1], "worker_died",
                                           "tb", CAMPAIGN["seed"])
        journal_path = str(tmp_path / "campaign.jsonl")
        journal = CampaignJournal(journal_path)
        journal.start(fingerprint, "C", CAMPAIGN["seed"], len(specs))
        journal.close()
        with open(journal_path, "a") as fh:
            for result in (placeholder, real, placeholder):
                fh.write(json.dumps({"type": "result", "index": 1,
                                     "result": result.to_dict()})
                         + "\n")
        loaded = CampaignJournal(journal_path).load(fingerprint)
        # HARNESS_ERROR first, real replay second: the replay wins.
        assert loaded[1].to_dict() == real.to_dict()

    def test_duplicate_completion_is_an_error(self, harness, expected):
        """Dedup lives in the journal layer alone; the engine must
        refuse a second completion of the same index outright."""
        from repro.injection.engine import CampaignEngine
        engine = CampaignEngine(harness)
        results = {}
        engine._complete(3, expected.results[3], [None] * 6, results,
                         None, None)
        with pytest.raises(RuntimeError, match="completed twice"):
            engine._complete(3, expected.results[3], [None] * 6,
                             results, None, None)

    def test_resume_rejects_foreign_journal(self, harness, tmp_path):
        journal_path = str(tmp_path / "campaign.jsonl")
        with open(journal_path, "w") as fh:
            fh.write(json.dumps({"type": "header",
                                 "fingerprint": "not-this-plan"}) + "\n")
        with pytest.raises(JournalMismatch):
            run_campaign(harness, journal_path=journal_path,
                         resume=True)

    def test_journal_load_of_missing_file_is_empty(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "absent.jsonl"))
        assert journal.load("whatever") == {}


class TestHarnessFaultContainment:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exception_becomes_harness_error_with_repro_bundle(
            self, harness, expected, monkeypatch, jobs):
        target = planned_specs(harness)[3]
        real = harness.run_spec

        def exploding(spec, grade=True):
            if match(spec, target):
                raise RuntimeError("decoder exploded on corrupt opcode")
            return real(spec, grade=grade)

        monkeypatch.setattr(harness, "run_spec", exploding)
        out = run_campaign(harness, jobs=jobs)
        failed = out.results[3]
        assert failed.outcome == HARNESS_ERROR
        assert not failed.activated
        assert "decoder exploded" in failed.repro["traceback"]
        assert failed.repro["seed"] == CAMPAIGN["seed"]
        assert failed.repro["spec"]["function"] == target.function
        assert out.meta["engine"]["harness_errors"] == 1
        # the rest of the campaign is untouched
        others = [d for i, d in enumerate(result_dicts(out)) if i != 3]
        expected_others = [d for i, d in
                           enumerate(result_dicts(expected)) if i != 3]
        assert others == expected_others


class TestWorkerFaultTolerance:
    def test_sigkilled_worker_costs_one_retry_not_the_campaign(
            self, harness, expected, monkeypatch, tmp_path):
        target = planned_specs(harness)[3]
        flag = tmp_path / "already-killed"
        parent = os.getpid()
        real = harness.run_spec

        def kill_once(spec, grade=True):
            if (os.getpid() != parent and match(spec, target)
                    and not flag.exists()):
                flag.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return real(spec, grade=grade)

        monkeypatch.setattr(harness, "run_spec", kill_once)
        out = run_campaign(harness, jobs=2)
        assert result_dicts(out) == result_dicts(expected)
        assert out.meta["engine"]["worker_failures"] == 1
        assert out.meta["engine"]["degraded"] is False

    def test_death_after_delivery_never_reruns_the_spec(
            self, harness, expected, monkeypatch, tmp_path):
        """A worker that dies right after sending its (journaled)
        result must be retired, not re-enqueued: the result is
        harvested from the pipe and the spec runs exactly once."""
        import repro.injection.engine as engine_mod
        target = planned_specs(harness)[3]
        runs = tmp_path / "target-runs"
        parent = os.getpid()
        real_spec = harness.run_spec
        real_main = engine_mod._worker_main

        def counting(spec, grade=True):
            if os.getpid() != parent and match(spec, target):
                with open(runs, "a") as fh:
                    fh.write("x")
            return real_spec(spec, grade=grade)

        class DieAfterSend:
            def __init__(self, conn, specs):
                self._conn = conn
                self._specs = specs

            def recv(self):
                return self._conn.recv()

            def close(self):
                self._conn.close()

            def send(self, payload):
                self._conn.send(payload)
                if match(self._specs[payload[0]], target):
                    os.kill(os.getpid(), signal.SIGKILL)

        def dying_main(h, specs, grade, seed, conn):
            real_main(h, specs, grade, seed,
                      DieAfterSend(conn, specs))

        monkeypatch.setattr(harness, "run_spec", counting)
        monkeypatch.setattr(engine_mod, "_worker_main", dying_main)
        out = run_campaign(harness, jobs=2)
        assert result_dicts(out) == result_dicts(expected)
        assert runs.read_text() == "x"      # ran exactly once
        assert out.meta["engine"]["worker_failures"] == 1
        assert out.meta["engine"]["harness_errors"] == 0

    def test_retries_exhausted_yields_harness_error(self, harness,
                                                    monkeypatch,
                                                    expected):
        target = planned_specs(harness)[3]
        parent = os.getpid()
        real = harness.run_spec

        def kill_always(spec, grade=True):
            if os.getpid() != parent and match(spec, target):
                os.kill(os.getpid(), signal.SIGKILL)
            return real(spec, grade=grade)

        monkeypatch.setattr(harness, "run_spec", kill_always)
        out = run_campaign(harness, jobs=2, retries=1,
                           max_worker_failures=10)
        failed = out.results[3]
        assert failed.outcome == HARNESS_ERROR
        assert failed.repro["kind"] == KIND_WORKER_DIED
        assert out.meta["engine"]["worker_failures"] == 2
        others = [d for i, d in enumerate(result_dicts(out)) if i != 3]
        expected_others = [d for i, d in
                           enumerate(result_dicts(expected)) if i != 3]
        assert others == expected_others

    def test_repeated_failures_degrade_to_serial(self, harness,
                                                 monkeypatch, expected):
        target = planned_specs(harness)[3]
        parent = os.getpid()
        real = harness.run_spec

        def poison(spec, grade=True):
            if match(spec, target):
                if os.getpid() != parent:
                    os.kill(os.getpid(), signal.SIGKILL)
                raise RuntimeError("fails in-process too")
            return real(spec, grade=grade)

        monkeypatch.setattr(harness, "run_spec", poison)
        out = run_campaign(harness, jobs=2, max_worker_failures=1)
        engine = out.meta["engine"]
        assert engine["degraded"] is True
        assert "worker failures" in engine["degraded_reason"]
        # the poisoned spec is contained, everything else completes
        assert out.results[3].outcome == HARNESS_ERROR
        others = [d for i, d in enumerate(result_dicts(out)) if i != 3]
        expected_others = [d for i, d in
                           enumerate(result_dicts(expected)) if i != 3]
        assert others == expected_others


class TestAtomicSave:
    def test_save_is_atomic_and_leaves_no_temp_files(self, harness,
                                                     expected,
                                                     tmp_path):
        from repro.injection.runner import CampaignResults
        path = tmp_path / "out.json"
        expected.save(str(path))
        loaded = CampaignResults.load(str(path))
        assert result_dicts(loaded) == result_dicts(expected)
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_save_preserves_previous_file(self, tmp_path):
        from repro.injection.runner import CampaignResults
        path = tmp_path / "out.json"
        good = CampaignResults("C", [], {"note": "good"})
        good.save(str(path))
        bad = CampaignResults("C", [], {"unserializable": object()})
        with pytest.raises(TypeError):
            bad.save(str(path))
        # the old complete file is still there, not a truncated one
        assert CampaignResults.load(str(path)).meta["note"] == "good"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
