"""ExperimentContext plumbing (cache paths, summaries, lazy builds)."""

import json

from repro.experiments.context import SCALES, ExperimentContext
from repro.injection.runner import CampaignResults
from tests.test_analysis import make_result


class TestContextPlumbing:
    def test_lazy_shared_state_cached(self, kernel):
        ctx = ExperimentContext(scale="tiny")
        ctx._kernel = kernel
        assert ctx.kernel is kernel
        assert ctx.kernel is ctx.kernel

    def test_cache_path_encodes_scale_and_seed(self, tmp_path):
        ctx = ExperimentContext(scale="tiny", seed=7,
                                results_dir=str(tmp_path))
        path = ctx._cache_path("B")
        assert "campaign_B_tiny_seed7.json" in path

    def test_no_results_dir_no_cache(self):
        ctx = ExperimentContext(scale="tiny")
        assert ctx._cache_path("A") is None
        assert ctx._load_cached("A") is None

    def test_corrupt_cache_ignored(self, tmp_path):
        ctx = ExperimentContext(scale="tiny", results_dir=str(tmp_path))
        path = ctx._cache_path("A")
        with open(path, "w") as fh:
            fh.write("{not json")
        assert ctx._load_cached("A") is None

    def test_summary_json(self):
        ctx = ExperimentContext(scale="tiny", seed=3)
        ctx._campaigns = {
            key: CampaignResults(key, [
                make_result(outcome="not_manifested"),
                make_result(outcome="crash_dumped", crash_cause="gpf"),
            ]) for key in "ABC"
        }
        payload = json.loads(ctx.summary_json())
        assert payload["seed"] == 3
        assert payload["campaigns"]["A"]["injected"] == 2
        assert payload["campaigns"]["B"]["pie"]["crash_dumped"] == 1

    def test_scales_monotone(self):
        order = ["tiny", "quick", "standard", "full"]
        for campaign in "ABC":
            strides = [SCALES[name][campaign][0] for name in order]
            assert strides == sorted(strides, reverse=True)
