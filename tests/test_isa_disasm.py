"""AT&T disassembly formatting (the paper's listing style)."""

import pytest

from repro.isa.decoder import decode_all
from repro.isa.disasm import disassemble, format_instr


def fmt(data, addr=0):
    return format_instr(decode_all(bytes(data), base=addr)[0])


class TestFormatting:
    @pytest.mark.parametrize("data,expected", [
        (b"\x85\xd2", "test %edx,%edx"),
        (b"\x31\xd2", "xor %edx,%edx"),
        (b"\x8b\x51\x0c", "mov 0xc(%ecx),%edx"),
        (b"\x39\x5d\x0c", "cmp %ebx,0xc(%ebp)"),
        (b"\x8d\x04\x82", "lea (%edx,%eax,4),%eax"),
        (b"\x0f\xb6\x42\x1b", "movzbl 0x1b(%edx),%eax"),
        (b"\xcb", "lret"),
        (b"\x5d", "pop %ebp"),
        (b"\x0f\x0b", "ud2a"),
        (b"\x34\x56", "xor $0x56,%al"),
        (b"\x0c\x39", "or $0x39,%al"),
        (b"\x04\x82", "add $0x82,%al"),
        (b"\x90", "nop"),
        (b"\xc3", "ret"),
        (b"\xf3\xa5", "rep movsl"),
        (b"\xcd\x80", "int $0x80"),
        (b"\x99", "cltd"),
    ])
    def test_att_spellings(self, data, expected):
        assert fmt(data) == expected

    def test_branch_targets_resolved(self):
        # 74 56 at 0xc011449c -> je 0xc01144f4 (paper Table 6 row 1)
        assert fmt(b"\x74\x56", addr=0xC011449C) == "je 0xc01144f4"
        assert fmt(b"\x7c\x56", addr=0xC011449C) == "jl 0xc01144f4"

    def test_near_branch_target(self):
        # 0f 84 ed 00 00 00 at c013a9ca -> je c013a9bd + 0xed ... compute
        text = fmt(b"\x0f\x84\xed\x00\x00\x00", addr=0xC013A8D0)
        assert text == "je 0x%x" % (0xC013A8D0 + 6 + 0xED)

    def test_call_target(self):
        text = fmt(b"\xe8\x10\x00\x00\x00", addr=0x1000)
        assert text == "call 0x1015"

    def test_negative_displacement_prints_unsigned(self):
        # AT&T convention in the paper: 0xfffffc0(%ebp)
        text = fmt(b"\x89\x45\xc0")
        assert text == "mov %eax,0xffffffc0(%ebp)"

    def test_mov_dr(self):
        assert fmt(b"\x0f\x23\xc0") == "mov %eax,%db0"
        assert fmt(b"\x0f\x21\xc0") == "mov %db0,%eax"

    def test_setcc_and_cmovcc(self):
        assert fmt(b"\x0f\x94\xc0") == "sete %al"
        assert fmt(b"\x0f\x45\xc1") == "cmovne %ecx,%eax"

    def test_bad_bytes(self):
        assert fmt(b"\xf1") == "(bad)"


class TestDisassembleListing:
    def test_lines_have_addr_bytes_text(self):
        lines = disassemble(b"\x55\x89\xe5\xc3", base=0xC0100000)
        assert lines[0] == (0xC0100000, "55", "push %ebp")
        assert lines[1] == (0xC0100001, "89 e5", "mov %esp,%ebp")
        assert lines[2][2] == "ret"

    def test_every_byte_accounted(self):
        data = bytes(range(0x50, 0x62))
        lines = disassemble(data)
        consumed = sum(len(h.split()) for _, h, _ in lines)
        assert consumed == len(data)
