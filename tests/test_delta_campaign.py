"""Delta campaigns end to end: carry rules, journals, fabric, CLI.

The execution half of :mod:`repro.staticanalysis.delta`: planning a
campaign against a prior journal, pre-seeding carried records with
provenance, resuming the engine over them, sharding through the
fabric, and the ``run_campaign(delta_from=...)`` /
``python -m repro.tools.kdelta`` entry points.
"""

import json

import pytest

from repro.injection.fabric import merge_shard_journals, plan_shards, \
    run_shard
from repro.injection.runner import InjectionHarness
from repro.kernel.build import build_kernel
from repro.staticanalysis.delta import (
    RECOVERY_GATE_EDIT,
    load_journal_results,
    plan_delta,
    seed_shard_journals,
    write_results_journal,
)

_KEY = "A"
_SEED = 2003
_STRIDE = 40
_MAX_SPECS = 12


@pytest.fixture(scope="module")
def base_run(harness, tmp_path_factory):
    """A small journaled campaign slice on the unedited kernel."""
    path = str(tmp_path_factory.mktemp("delta") / "base.journal.jsonl")
    results = harness.run_campaign(_KEY, seed=_SEED,
                                   byte_stride=_STRIDE,
                                   max_specs=_MAX_SPECS,
                                   journal_path=path)
    return results, path


@pytest.fixture(scope="module")
def recovery_harness2(harness):
    """Harness on the recovery-gate rebuild (same profile/binaries)."""
    kernel = build_kernel(source_edits=RECOVERY_GATE_EDIT)
    return InjectionHarness(kernel, harness.binaries, harness.profile)


def _dicts(results):
    return [r.to_dict() for r in results]


# -- planning against an unchanged kernel -----------------------------


def test_noop_delta_carries_everything(harness, base_run):
    _, journal = base_run
    plan = plan_delta(harness, harness.kernel, journal, _KEY,
                      seed=_SEED, byte_stride=_STRIDE,
                      max_specs=_MAX_SPECS)
    assert not plan.diff.any_change
    assert len(plan.carried) == len(plan.specs)
    assert plan.live_indices == []
    assert plan.rerun_fraction == 0.0


def test_noop_delta_results_identical(harness, base_run, tmp_path):
    base, journal = base_run
    out = str(tmp_path / "noop.journal.jsonl")
    delta = harness.run_campaign(_KEY, seed=_SEED,
                                 byte_stride=_STRIDE,
                                 max_specs=_MAX_SPECS,
                                 journal_path=out,
                                 delta_from=journal,
                                 delta_base_kernel=harness.kernel)
    assert _dicts(delta.results) == _dicts(base.results)
    assert delta.meta["delta"]["live"] == 0
    assert delta.meta["delta"]["rerun_fraction"] == 0.0

    # Every journal record is carried exactly once, stamped with the
    # full provenance triple; indices are unique (exactly-once holds).
    indices = []
    stamped = 0
    with open(out) as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("type") != "result":
                continue
            indices.append(record["index"])
            carried = record.get("carried")
            if carried:
                assert carried["source_journal"]
                assert carried["base_kernel"]
                assert carried["new_kernel"]
                assert carried["base_kernel"] == carried["new_kernel"]
                stamped += 1
    assert sorted(indices) == list(range(len(base.results)))
    assert len(set(indices)) == len(indices)
    assert stamped == len(base.results)


def test_enriched_source_records_stay_live(harness, base_run,
                                           tmp_path):
    """A record carrying pred_*/trace_* enrichment cannot be proved
    reproducible by an unenriched re-run: it must go live."""
    _, journal = base_run
    doctored = str(tmp_path / "enriched.journal.jsonl")
    flagged = 0
    with open(journal) as src, open(doctored, "w") as dst:
        for line in src:
            record = json.loads(line)
            if record.get("type") == "result" and not flagged:
                record["result"]["pred_class"] = "CORRUPT_VALUE"
                flagged += 1
            dst.write(json.dumps(record) + "\n")
    assert flagged == 1
    plan = plan_delta(harness, harness.kernel, doctored, _KEY,
                      seed=_SEED, byte_stride=_STRIDE,
                      max_specs=_MAX_SPECS)
    assert plan.reasons["enriched-source"] == 1
    assert len(plan.live_indices) == 1


# -- the recovery-gate rebuild ----------------------------------------


def test_recovery_delta_equals_scratch(harness, recovery_harness2,
                                       base_run):
    _, journal = base_run
    scratch = recovery_harness2.run_campaign(_KEY, seed=_SEED,
                                             byte_stride=_STRIDE,
                                             max_specs=_MAX_SPECS)
    delta = recovery_harness2.run_campaign(
        _KEY, seed=_SEED, byte_stride=_STRIDE, max_specs=_MAX_SPECS,
        delta_from=journal, delta_base_kernel=harness.kernel)
    assert _dicts(delta.results) == _dicts(scratch.results)
    meta = delta.meta["delta"]
    assert meta["live"] >= 1
    assert meta["live"] + meta["carried"] == len(scratch.results)
    assert sum(meta["reasons"].values()) == meta["live"]
    assert meta["diff"]["changed"] == ["oops_recoverable"]


# -- journal materialization ------------------------------------------


def test_write_results_journal_roundtrip(base_run, tmp_path):
    base, _ = base_run
    path = str(tmp_path / "materialized.journal.jsonl")
    write_results_journal(base, path)
    header, by_coords = load_journal_results(path)
    assert header["fingerprint"] == base.meta["fingerprint"]
    assert len(by_coords) == len(base.results)
    for result in base.results:
        coords = (result.function, result.addr, result.byte_offset,
                  result.bit, result.fault_model)
        assert by_coords[coords].to_dict() == result.to_dict()


# -- fabric composition -----------------------------------------------


def test_delta_plan_shards_and_merges(harness, base_run, tmp_path):
    base, journal = base_run
    plan = plan_delta(harness, harness.kernel, journal, _KEY,
                      seed=_SEED, byte_stride=_STRIDE,
                      max_specs=_MAX_SPECS)
    shards = plan_shards(plan.fingerprint, len(plan.specs), 2)
    paths = seed_shard_journals(plan, shards, str(tmp_path))
    for shard, path in zip(shards, paths):
        results, meta = run_shard(harness, _KEY, plan.specs, _SEED,
                                  _STRIDE, shard, path, resume=True)
        # Fully carried shard: nothing executes, everything resumes.
        assert meta["resumed_results"] == len(shard.indices)
    merged = merge_shard_journals(paths)
    assert not merged.missing
    assert _dicts(merged.ordered()) == _dicts(base.results)


# -- entry-point validation -------------------------------------------


def test_run_campaign_delta_argument_validation(harness, base_run):
    _, journal = base_run
    with pytest.raises(ValueError, match="delta_base_kernel"):
        harness.run_campaign(_KEY, delta_from=journal)
    with pytest.raises(ValueError, match="enrich"):
        harness.run_campaign(_KEY, delta_from=journal,
                             delta_base_kernel=harness.kernel,
                             static_verdicts=True)


def test_plan_delta_rejects_traced_harness(harness, base_run):
    _, journal = base_run
    traced = InjectionHarness(harness.kernel, harness.binaries,
                              harness.profile, trace=True)
    with pytest.raises(ValueError, match="untraced"):
        plan_delta(traced, harness.kernel, journal, _KEY)


# -- kdelta CLI -------------------------------------------------------


def test_kdelta_diff_recovery(capsys):
    from repro.tools.kdelta import main
    assert main(["diff", "--recovery"]) == 0
    out = capsys.readouterr().out
    assert "oops_recoverable" in out
    assert "data:      unchanged" in out


def test_kdelta_requires_an_edit(capsys):
    from repro.tools.kdelta import main
    with pytest.raises(SystemExit):
        main(["diff"])
    assert "no source edits" in capsys.readouterr().err
