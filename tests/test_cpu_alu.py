"""CPU arithmetic/logic semantics, exercised through real machine code."""

import pytest

from tests.helpers import run_fragment


def test_add_basic():
    assert run_fragment("mov eax, 2\n add eax, 3") == 5


def test_add_wraps_mod_32():
    code = run_fragment("mov eax, 0xffffffff\n add eax, 2")
    assert code == 1


def test_sub_and_flags_via_setcc():
    body = """
    mov eax, 3
    cmp eax, 5
    setl al
    movzx eax, al
    """
    assert run_fragment(body) == 1


def test_unsigned_compare_setb():
    body = """
    mov eax, 0x80000000
    cmp eax, 1
    setb al
    movzx eax, al
    """
    assert run_fragment(body) == 0  # 0x80000000 > 1 unsigned


def test_signed_compare_setl():
    body = """
    mov eax, 0x80000000
    cmp eax, 1
    setl al
    movzx eax, al
    """
    assert run_fragment(body) == 1  # negative < 1 signed


def test_mul_edx_eax():
    body = """
    mov eax, 0x10000
    mov ecx, 0x10000
    mul ecx
    mov eax, edx
    """
    assert run_fragment(body) == 1  # 2^32 -> edx = 1


def test_imul_negative():
    body = """
    mov eax, -6
    mov ecx, 7
    imul eax, ecx
    """
    assert run_fragment(body) == (-42) & 0xFFFFFFFF


def test_div_quotient_remainder():
    body = """
    mov eax, 100
    xor edx, edx
    mov ecx, 7
    div ecx
    shl edx, 8
    or eax, edx
    """
    assert run_fragment(body) == (2 << 8) | 14


def test_idiv_truncates_toward_zero():
    body = """
    mov eax, -7
    cdq
    mov ecx, 2
    idiv ecx
    """
    assert run_fragment(body) == (-3) & 0xFFFFFFFF


def test_inc_preserves_carry():
    body = """
    mov eax, 0xffffffff
    add eax, 1          ; sets CF
    mov eax, 0
    inc eax             ; must not clear CF
    setb al             ; CF still set
    movzx eax, al
    """
    assert run_fragment(body) == 1


def test_neg():
    assert run_fragment("mov eax, 5\n neg eax") == (-5) & 0xFFFFFFFF


def test_not():
    assert run_fragment("mov eax, 0\n not eax") == 0xFFFFFFFF


def test_shl_shr_sar():
    assert run_fragment("mov eax, 1\n shl eax, 4") == 16
    assert run_fragment("mov eax, 0x80000000\n shr eax, 31") == 1
    assert run_fragment("mov eax, 0x80000000\n sar eax, 31") == 0xFFFFFFFF


def test_shift_by_cl():
    body = """
    mov eax, 1
    mov ecx, 5
    shl eax, cl
    """
    assert run_fragment(body) == 32


def test_shift_count_masked_to_5_bits():
    body = """
    mov eax, 1
    mov ecx, 33
    shl eax, cl
    """
    assert run_fragment(body) == 2


def test_rol_ror():
    assert run_fragment("mov eax, 0x80000001\n rol eax, 1") == 3
    assert run_fragment("mov eax, 3\n ror eax, 1") == 0x80000001


def test_shrd():
    body = """
    mov eax, 0x0000b728
    mov edx, 0
    shrd eax, edx, 12
    """
    # Figure 5: end_index = i_size >> 12
    assert run_fragment(body) == 0xB728 >> 12


def test_adc_sbb_chain():
    body = """
    mov eax, 0xffffffff
    add eax, 1          ; CF=1
    mov eax, 10
    adc eax, 0          ; eax = 11
    cmp eax, 11
    sete al
    movzx eax, al
    """
    assert run_fragment(body) == 1


def test_xchg():
    body = """
    mov eax, 1
    mov ecx, 2
    xchg eax, ecx
    shl eax, 8
    or eax, ecx
    """
    assert run_fragment(body) == (2 << 8) | 1


def test_bswap():
    assert run_fragment("mov eax, 0x11223344\n bswap eax") == 0x44332211


def test_bsf_bsr():
    assert run_fragment("mov ecx, 0x00f0\n bsf eax, ecx") == 4
    assert run_fragment("mov ecx, 0x00f0\n bsr eax, ecx") == 7


def test_bt_sets_carry():
    body = """
    mov ecx, 8
    bt ecx, 3
    setb al
    movzx eax, al
    """
    assert run_fragment(body) == 1


def test_cmovcc():
    body = """
    mov eax, 1
    mov ecx, 99
    test eax, eax
    cmovne eax, ecx
    """
    assert run_fragment(body) == 99


def test_cwde():
    assert run_fragment("mov eax, 0x0000ff80\n cwde") == 0xFFFFFF80


def test_parity_flag():
    body = """
    mov eax, 3          ; two bits -> even parity
    test eax, eax
    setp al
    movzx eax, al
    """
    assert run_fragment(body) == 1


@pytest.mark.parametrize("value,expected", [(0, 1), (7, 0)])
def test_zero_flag(value, expected):
    body = """
    mov eax, %d
    test eax, eax
    sete al
    movzx eax, al
    """ % value
    assert run_fragment(body) == expected
