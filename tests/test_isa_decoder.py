"""Decoder unit tests, anchored on the paper's own listings."""

import pytest

from repro.isa.decoder import DecodeError, decode, decode_all
from repro.isa.disasm import format_instr
from repro.isa.instr import Mem


def decode_bytes(data, addr=0):
    data = bytes(data)

    def read(a):
        return data[a - addr]

    return decode(read, addr)


def disasm_one(data, addr=0):
    return format_instr(decode_bytes(data, addr))


class TestPaperListings:
    """Byte sequences quoted in the paper decode identically here."""

    def test_je_short(self):
        # Table 6 #1: "74 56  je"
        ins = decode_bytes(b"\x74\x56", addr=0xC011449C)
        assert ins.op == "jcc"
        assert ins.cc == 4  # e
        assert ins.length == 2

    def test_jl_short(self):
        # Table 6 #1 after injection: "7c 56  jl"
        ins = decode_bytes(b"\x7c\x56")
        assert ins.op == "jcc"
        assert ins.cc == 12  # l

    def test_je_near(self):
        # Table 6 #2: "0f 84 ed 00 00 00  je"
        ins = decode_bytes(b"\x0f\x84\xed\x00\x00\x00")
        assert ins.op == "jcc" and ins.cc == 4
        assert ins.length == 6
        assert ins.rel == 0xED

    def test_je_to_xor(self):
        # Table 6 #3: flipping 0x74 -> 0x34 gives "xor $0x56,%al"
        ins = decode_bytes(b"\x34\x56")
        assert ins.op == "xor"
        assert ins.size == 1
        assert ins.dst == ("r8", 0)
        assert ins.src == ("i", 0x56)

    def test_movzbl_null_path(self):
        # Table 7 #1: "movzbl 0x1b(%edx),%eax"
        ins = decode_bytes(b"\x0f\xb6\x42\x1b")
        assert ins.op == "movzx"
        assert ins.dst == ("r", 0)
        kind, mem = ins.src
        assert kind == "m" and mem.base == 2 and mem.disp == 0x1B

    def test_test_jne_pair(self):
        # Table 7 #1: "85 d2 test %edx,%edx ; 75 28 jne"
        instrs = decode_all(b"\x85\xd2\x75\x28")
        assert [i.op for i in instrs] == ["test", "jcc"]
        assert instrs[1].cc == 5

    def test_resequencing_after_length_change(self):
        # Table 7 #2: "8b 51 0c / 39 5d 0c / 8d 04 82" corrupted to
        # "8b 11" re-decodes the following bytes as new instructions.
        original = decode_all(b"\x8b\x51\x0c\x39\x5d\x0c\x8d\x04\x82")
        assert [i.op for i in original] == ["mov", "cmp", "lea"]
        corrupted = decode_all(b"\x8b\x11\x0c\x39\x5d\x0c\x8d\x04\x82")
        ops = [i.op for i in corrupted]
        assert ops[0] == "mov"
        assert ops[1] == "or"       # 0c 39 or $0x39,%al
        assert ops[2] == "pop"      # 5d pop %ebp
        assert ops[3] == "or"       # 0c 8d
        assert ops[4] == "add"      # 04 82

    def test_mov_to_lret(self):
        # Table 7 #3: 8b ^ 0x40 = cb (mov -> lret, a GPF source)
        assert 0x8B ^ 0x40 == 0xCB
        ins = decode_bytes(b"\xcb")
        assert ins.op == "lret"

    def test_ud2a(self):
        # Table 7 #4: the BUG() trap instruction.
        ins = decode_bytes(b"\x0f\x0b")
        assert ins.op == "ud2"
        assert format_instr(ins) == "ud2a"

    def test_shrd_from_figure5(self):
        # Figure 5 uses shrd to build end_index.
        ins = decode_bytes(b"\x0f\xac\xd0\x0c")  # shrd $12,%edx,%eax
        assert ins.op == "shrd"
        assert ins.imm2 == ("i", 12)


class TestDecodeBasics:
    @pytest.mark.parametrize("data,op,length", [
        (b"\x90", "nop", 1),
        (b"\xc3", "ret", 1),
        (b"\xc9", "leave", 1),
        (b"\xcc", "int3", 1),
        (b"\xf4", "hlt", 1),
        (b"\x50", "push", 1),
        (b"\x58", "pop", 1),
        (b"\x40", "inc", 1),
        (b"\x99", "cdq", 1),
        (b"\xcd\x80", "int", 2),
        (b"\xe8\x00\x00\x00\x00", "call", 5),
        (b"\xeb\xfe", "jmp", 2),
        (b"\xb8\x01\x00\x00\x00", "mov", 5),
        (b"\x0f\x31", "rdtsc", 2),
        (b"\x0f\xa2", "cpuid", 2),
    ])
    def test_simple(self, data, op, length):
        ins = decode_bytes(data)
        assert ins.op == op
        assert ins.length == length

    def test_modrm_sib(self):
        # lea (%edx,%eax,4),%eax -- from the paper's Figure 5 code
        ins = decode_bytes(b"\x8d\x04\x82")
        assert ins.op == "lea"
        kind, mem = ins.src
        assert (mem.base, mem.index, mem.scale) == (2, 0, 4)

    def test_disp32_absolute(self):
        ins = decode_bytes(b"\x8b\x05\x44\x33\x22\x11")
        kind, mem = ins.src
        assert mem.base is None and mem.disp == 0x11223344

    def test_ebp_disp8(self):
        ins = decode_bytes(b"\x8b\x45\x08")  # mov 0x8(%ebp),%eax
        kind, mem = ins.src
        assert mem.base == 5 and mem.disp == 8

    def test_negative_disp(self):
        ins = decode_bytes(b"\x89\x45\xfc")  # mov %eax,-0x4(%ebp)
        kind, mem = ins.dst
        assert mem.disp == -4

    def test_rep_prefix(self):
        ins = decode_bytes(b"\xf3\xa5")
        assert ins.op == "movs" and ins.rep == "rep" and ins.size == 4

    def test_segment_prefix_consumed(self):
        ins = decode_bytes(b"\x3e\x8b\x45\x08")
        assert ins.op == "mov" and ins.length == 4

    def test_group3_div(self):
        ins = decode_bytes(b"\xf7\xf1")  # div %ecx
        assert ins.op == "div" and ins.dst == ("r", 1)

    def test_group5_indirect_call(self):
        ins = decode_bytes(b"\xff\xd0")  # call *%eax
        assert ins.op == "call_ind" and ins.dst == ("r", 0)

    def test_mov_dr(self):
        ins = decode_bytes(b"\x0f\x23\xc0")  # mov %eax,%db0
        assert ins.op == "mov_to_dr"


class TestUndefinedEncodings:
    @pytest.mark.parametrize("data", [
        b"\x63\x00",            # arpl (not in subset)
        b"\x66\x90",            # operand-size prefix (not in subset)
        b"\xd6",                # salc
        b"\xd8\x00",            # x87
        b"\xf1",                # int1
        b"\x0f\xff",            # undefined two-byte
        b"\x0f\x0b",            # ud2 (defined, but traps) -- not an error
    ])
    def test_raise_or_trap(self, data):
        if data == b"\x0f\x0b":
            assert decode_bytes(data).op == "ud2"
            return
        with pytest.raises(DecodeError):
            decode_bytes(data)

    def test_bad_group_encoding(self):
        with pytest.raises(DecodeError):
            decode_bytes(b"\xff\xf8")  # group-5 /7 is undefined

    def test_decode_all_marks_bad(self):
        instrs = decode_all(b"\x90\xf1\x90")
        assert [i.op for i in instrs] == ["nop", "(bad)", "nop"]

    def test_length_limit(self):
        with pytest.raises(DecodeError):
            decode_bytes(b"\x3e" * 20 + b"\x90")


class TestInstrPredicates:
    def test_cond_branch_flag(self):
        assert decode_bytes(b"\x74\x00").is_cond_branch
        assert not decode_bytes(b"\xe9\x00\x00\x00\x00").is_cond_branch
        assert decode_bytes(b"\xe2\x00").is_cond_branch  # loop

    def test_branch_flag(self):
        assert decode_bytes(b"\xc3").is_branch
        assert decode_bytes(b"\xcd\x80").is_branch
        assert not decode_bytes(b"\x90").is_branch

    def test_raw_bytes_recorded(self):
        ins = decode_bytes(b"\x8b\x45\x08")
        assert ins.raw == b"\x8b\x45\x08"

    def test_mem_equality(self):
        assert Mem(base=1, disp=4) == Mem(base=1, disp=4)
        assert Mem(base=1, disp=4) != Mem(base=2, disp=4)
