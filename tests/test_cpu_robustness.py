"""Robustness: the simulator must survive ARBITRARY machine code.

Injection campaigns make the kernel execute corrupted byte streams; no
matter what bytes the CPU meets, the host process must only ever see
the simulator's own exception types.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.cpu import CPU, CpuHalted, WatchdogExpired
from repro.cpu.devices import MachineShutdown
from repro.cpu.memory import MemoryBus
from repro.cpu.traps import TripleFault

ALLOWED = (CpuHalted, WatchdogExpired, TripleFault, MachineShutdown)

import functools


@functools.lru_cache(maxsize=1)
def _prologue():
    from repro.isa.assembler import assemble
    return assemble(
        """
_start:
    mov esp, 0x8000
    mov ecx, 0x176
    mov eax, idt
    wrmsr
    jmp payload
handler:
    iret
.align 4
idt:
    .space 2048
payload:
""", base=0x1000)


def run_random(code, cycles=6_000):
    prologue = _prologue()
    bus = MemoryBus(0x40000)
    bus.phys_write_bytes(0x1000, prologue.code)
    # Point every IDT gate at the iret handler.
    handler = prologue.symbols["handler"]
    idt = prologue.symbols["idt"]
    for vector in range(256):
        bus.phys_write(idt + vector * 8, 4, handler)
        bus.phys_write(idt + vector * 8 + 4, 4, 1)
    payload = prologue.symbols["payload"]
    bus.phys_write_bytes(payload, code)
    cpu = CPU(bus)
    cpu.eip = 0x1000
    try:
        cpu.run(cycles)
    except ALLOWED:
        pass
    return cpu


@given(code=st.binary(min_size=1, max_size=64))
@settings(max_examples=120, deadline=None)
def test_arbitrary_bytes_never_crash_host(code):
    cpu = run_random(code)
    assert cpu.cycles >= 0


@given(code=st.binary(min_size=8, max_size=40),
       flips=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                      min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_bit_flipped_streams_never_crash_host(code, flips):
    corrupted = bytearray(code)
    for offset, bit in flips:
        corrupted[offset % len(corrupted)] ^= 1 << bit
    run_random(bytes(corrupted))


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_random_jumping_code_bounded(seed):
    import random
    rng = random.Random(seed)
    # Mix of branches and wild memory ops.
    code = bytearray()
    for _ in range(24):
        choice = rng.randrange(4)
        if choice == 0:
            code += bytes([0x70 + rng.randrange(16), rng.randrange(256)])
        elif choice == 1:
            code += bytes([0x8B, rng.randrange(256)])
        elif choice == 2:
            code += bytes([rng.randrange(256)])
        else:
            code += bytes([0xE9]) + rng.randrange(2**32).to_bytes(
                4, "little")
    cpu = run_random(bytes(code), cycles=5_000)
    assert cpu.cycles <= 5_100
