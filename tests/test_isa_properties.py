"""Property-based tests for the ISA layer (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.conditions import CC_NAMES, cc_holds, cc_invert
from repro.isa.decoder import DecodeError, decode, decode_all
from repro.isa.disasm import format_instr

REG_NAMES = ("eax", "ecx", "edx", "ebx", "esi", "edi")  # not esp/ebp

regs = st.sampled_from(REG_NAMES)
imm32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
imm8 = st.integers(min_value=0, max_value=0xFF)
disp = st.integers(min_value=-128, max_value=127)


def _decode_one(data):
    data = bytes(data)

    def read(a):
        if a >= len(data):
            raise IndexError(a)
        return data[a]

    return decode(read, 0)


@st.composite
def simple_lines(draw):
    """Generate an assemblable instruction line."""
    choice = draw(st.integers(0, 7))
    r1 = draw(regs)
    r2 = draw(regs)
    if choice == 0:
        return "mov %s, %d" % (r1, draw(imm32))
    if choice == 1:
        return "mov %s, [%s%+d]" % (r1, r2, draw(disp))
    if choice == 2:
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                   "cmp", "adc", "sbb"]))
        return "%s %s, %s" % (op, r1, r2)
    if choice == 3:
        op = draw(st.sampled_from(["shl", "shr", "sar", "rol", "ror"]))
        return "%s %s, %d" % (op, r1, draw(st.integers(1, 31)))
    if choice == 4:
        return "push %s" % r1
    if choice == 5:
        return "test %s, %s" % (r1, r2)
    if choice == 6:
        return "lea %s, [%s+%s*%d%+d]" % (
            r1, r2, draw(regs), draw(st.sampled_from([1, 2, 4, 8])),
            draw(disp))
    return "movzx %s, byte [%s]" % (r1, r2)


class TestAssembleDecodeRoundTrip:
    @given(line=simple_lines())
    @settings(max_examples=300, deadline=None)
    def test_decodes_to_single_instruction(self, line):
        code = assemble(line).code
        instrs = decode_all(code)
        assert len(instrs) == 1
        assert instrs[0].length == len(code)
        assert instrs[0].op != "(bad)"

    @given(line=simple_lines())
    @settings(max_examples=150, deadline=None)
    def test_reassembly_is_stable(self, line):
        """assemble(x) decoded and re-printed assembles to same length."""
        code = assemble(line).code
        ins = decode_all(code)[0]
        assert format_instr(ins)  # printable


class TestDecoderTotality:
    @given(data=st.binary(min_size=1, max_size=15))
    @settings(max_examples=800, deadline=None)
    def test_never_crashes_and_consumes_bounded_bytes(self, data):
        try:
            ins = _decode_one(data + b"\x00" * 16)
        except DecodeError as exc:
            assert 1 <= exc.length <= 15
            return
        assert 1 <= ins.length <= 15
        assert ins.run is None
        assert isinstance(ins.op, str)

    @given(data=st.binary(min_size=4, max_size=64))
    @settings(max_examples=300, deadline=None)
    def test_decode_all_covers_every_byte(self, data):
        instrs = decode_all(data)
        consumed = sum(i.length for i in instrs)
        assert consumed <= len(data)
        # decode_all stops only when it runs out of bytes
        assert len(data) - consumed <= 15

    @given(data=st.binary(min_size=1, max_size=15))
    @settings(max_examples=300, deadline=None)
    def test_single_bit_flip_still_decodes_or_faults(self, data):
        """The injection operation can never wedge the decoder."""
        for bit in range(8):
            flipped = bytes([data[0] ^ (1 << bit)]) + data[1:]
            try:
                _decode_one(flipped + b"\x00" * 16)
            except DecodeError:
                pass


class TestConditionCodes:
    @given(cc=st.integers(0, 15), cf=st.booleans(), zf=st.booleans(),
           sf=st.booleans(), of=st.booleans(), pf=st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_invert_negates(self, cc, cf, zf, sf, of, pf):
        normal = cc_holds(cc, cf, zf, sf, of, pf)
        flipped = cc_holds(cc_invert(cc), cf, zf, sf, of, pf)
        assert normal != flipped

    def test_names_align_with_encoding(self):
        assert CC_NAMES[4] == "e"
        assert CC_NAMES[5] == "ne"
        assert CC_NAMES[12] == "l"
        assert cc_invert(4) == 5
