"""Property-based tests for the ISA layer (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.conditions import CC_NAMES, cc_holds, cc_invert
from repro.isa.decoder import DecodeError, decode, decode_all
from repro.isa.disasm import format_instr

REG_NAMES = ("eax", "ecx", "edx", "ebx", "esi", "edi")  # not esp/ebp

regs = st.sampled_from(REG_NAMES)
imm32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
imm8 = st.integers(min_value=0, max_value=0xFF)
disp = st.integers(min_value=-128, max_value=127)


def _decode_one(data):
    data = bytes(data)

    def read(a):
        if a >= len(data):
            raise IndexError(a)
        return data[a]

    return decode(read, 0)


@st.composite
def simple_lines(draw):
    """Generate an assemblable instruction line."""
    choice = draw(st.integers(0, 7))
    r1 = draw(regs)
    r2 = draw(regs)
    if choice == 0:
        return "mov %s, %d" % (r1, draw(imm32))
    if choice == 1:
        return "mov %s, [%s%+d]" % (r1, r2, draw(disp))
    if choice == 2:
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                   "cmp", "adc", "sbb"]))
        return "%s %s, %s" % (op, r1, r2)
    if choice == 3:
        op = draw(st.sampled_from(["shl", "shr", "sar", "rol", "ror"]))
        return "%s %s, %d" % (op, r1, draw(st.integers(1, 31)))
    if choice == 4:
        return "push %s" % r1
    if choice == 5:
        return "test %s, %s" % (r1, r2)
    if choice == 6:
        return "lea %s, [%s+%s*%d%+d]" % (
            r1, r2, draw(regs), draw(st.sampled_from([1, 2, 4, 8])),
            draw(disp))
    return "movzx %s, byte [%s]" % (r1, r2)


class TestAssembleDecodeRoundTrip:
    @given(line=simple_lines())
    @settings(max_examples=300, deadline=None)
    def test_decodes_to_single_instruction(self, line):
        code = assemble(line).code
        instrs = decode_all(code)
        assert len(instrs) == 1
        assert instrs[0].length == len(code)
        assert instrs[0].op != "(bad)"

    @given(line=simple_lines())
    @settings(max_examples=150, deadline=None)
    def test_reassembly_is_stable(self, line):
        """assemble(x) decoded and re-printed assembles to same length."""
        code = assemble(line).code
        ins = decode_all(code)[0]
        assert format_instr(ins)  # printable


class TestDecoderTotality:
    @given(data=st.binary(min_size=1, max_size=15))
    @settings(max_examples=800, deadline=None)
    def test_never_crashes_and_consumes_bounded_bytes(self, data):
        try:
            ins = _decode_one(data + b"\x00" * 16)
        except DecodeError as exc:
            assert 1 <= exc.length <= 15
            return
        assert 1 <= ins.length <= 15
        assert ins.run is None
        assert isinstance(ins.op, str)

    @given(data=st.binary(min_size=4, max_size=64))
    @settings(max_examples=300, deadline=None)
    def test_decode_all_covers_every_byte(self, data):
        instrs = decode_all(data)
        consumed = sum(i.length for i in instrs)
        assert consumed <= len(data)
        # decode_all stops only when it runs out of bytes
        assert len(data) - consumed <= 15

    @given(data=st.binary(min_size=1, max_size=15))
    @settings(max_examples=300, deadline=None)
    def test_single_bit_flip_still_decodes_or_faults(self, data):
        """The injection operation can never wedge the decoder."""
        for bit in range(8):
            flipped = bytes([data[0] ^ (1 << bit)]) + data[1:]
            try:
                _decode_one(flipped + b"\x00" * 16)
            except DecodeError:
                pass


class TestConditionCodes:
    @given(cc=st.integers(0, 15), cf=st.booleans(), zf=st.booleans(),
           sf=st.booleans(), of=st.booleans(), pf=st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_invert_negates(self, cc, cf, zf, sf, of, pf):
        normal = cc_holds(cc, cf, zf, sf, of, pf)
        flipped = cc_holds(cc_invert(cc), cf, zf, sf, of, pf)
        assert normal != flipped

    def test_names_align_with_encoding(self):
        assert CC_NAMES[4] == "e"
        assert CC_NAMES[5] == "ne"
        assert CC_NAMES[12] == "l"
        assert cc_invert(4) == 5


# -- disassembler round-trip over the full assembler surface --------------

SEG_NAMES_ASM = ("es", "cs", "ss", "ds", "fs", "gs")
R8_NAMES = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")

seg_regs = st.sampled_from(SEG_NAMES_ASM)
r8 = st.sampled_from(R8_NAMES)


@st.composite
def full_surface_lines(draw):
    """One line from (nearly) every encoding family the assembler emits."""
    r1, r2, r3 = draw(regs), draw(regs), draw(regs)
    mem = "[%s%+d]" % (r2, draw(disp))
    choice = draw(st.integers(0, 21))
    if choice == 0:
        return draw(st.sampled_from(
            ["nop", "cwde", "cdq", "pushf", "popf", "pusha", "popa",
             "sahf", "lahf", "ret", "leave", "lret", "iret", "hlt",
             "cmc", "clc", "stc", "cli", "sti", "cld", "std", "xlat",
             "ud2", "rdtsc", "cpuid", "int3", "into",
             "movsb", "movsd", "cmpsb", "cmpsd", "stosb", "stosd",
             "lodsb", "lodsd", "scasb", "scasd"]))
    if choice == 1:
        rep = draw(st.sampled_from(["rep", "repne"]))
        body = draw(st.sampled_from(["movsb", "movsd", "stosb",
                                     "stosd", "cmpsb", "scasd"]))
        return "%s %s" % (rep, body)
    if choice == 2:
        kind = draw(st.integers(0, 3))
        if kind == 0:
            return "mov %s, %s" % (r1, mem)
        if kind == 1:
            return "mov %s, %s" % (mem, r1)
        if kind == 2:
            return "mov %s, %d" % (draw(r8), draw(imm8))
        return "movb %s, %d" % (mem, draw(imm8))
    if choice == 3:
        op = draw(st.sampled_from(["add", "or", "adc", "sbb", "and",
                                   "sub", "xor", "cmp"]))
        form = draw(st.integers(0, 2))
        if form == 0:
            return "%s %s, %s" % (op, r1, r2)
        if form == 1:
            return "%s %s, %d" % (op, r1, draw(imm32))
        return "%s %s, %s" % (op, mem, r1)
    if choice == 4:
        op = draw(st.sampled_from(["shl", "shr", "sar", "rol", "ror",
                                   "rcl", "rcr"]))
        count = draw(st.sampled_from(["1", "7", "cl"]))
        return "%s %s, %s" % (op, r1, count)
    if choice == 5:
        op = draw(st.sampled_from(["shld", "shrd"]))
        count = draw(st.sampled_from(["4", "cl"]))
        return "%s %s, %s, %s" % (op, r1, r2, count)
    if choice == 6:
        op = draw(st.sampled_from(["inc", "dec", "not", "neg", "mul",
                                   "div", "idiv", "imul"]))
        return "%s %s" % (op, draw(st.sampled_from([r1, mem])))
    if choice == 7:
        form = draw(st.integers(0, 2))
        if form == 0:
            return "imul %s, %s" % (r1, r2)
        if form == 1:
            return "imul %s, %s, %d" % (r1, r2, draw(imm8))
        return "imul %s, %s, %d" % (r1, mem, draw(imm8))
    if choice == 8:
        op = draw(st.sampled_from(["push", "pop"]))
        if draw(st.booleans()):
            seg = draw(seg_regs)
            if op == "pop" and seg == "cs":
                seg = "ds"          # pop cs does not exist
            return "%s %s" % (op, seg)
        return "%s %s" % (op, r1)
    if choice == 9:
        return "push %d" % draw(imm32)
    if choice == 10:
        op = draw(st.sampled_from(["bt", "bts", "btr", "btc"]))
        src = draw(st.sampled_from([r2, "11"]))
        return "%s %s, %s" % (op, r1, src)
    if choice == 11:
        op = draw(st.sampled_from(["bsf", "bsr"]))
        return "%s %s, %s" % (op, r1, draw(st.sampled_from([r2, mem])))
    if choice == 12:
        op = draw(st.sampled_from(["cmpxchg", "xadd"]))
        return "%s %s, %s" % (op, mem, r1)
    if choice == 13:
        op = draw(st.sampled_from(["movzx", "movsx"]))
        width = draw(st.sampled_from(["byte", "word"]))
        return "%s %s, %s %s" % (op, r1, width, mem)
    if choice == 14:
        return draw(st.sampled_from(
            ["les %s, %s" % (r1, mem), "lds %s, %s" % (r1, mem),
             "bound %s, %s" % (r1, mem), "lea %s, %s" % (r1, mem),
             "invlpg %s" % mem, "enter 16, 0", "aam", "aad 7",
             "bswap %s" % r1, "int 0x80", "ret 8",
             "xchg %s, %s" % (r1, r2), "test %s, %s" % (r1, r2)]))
    if choice == 15:
        port = draw(st.sampled_from(["dx", "0x42"]))
        if draw(st.booleans()):
            return "in %s, %s" % (draw(st.sampled_from(["al", "eax"])),
                                  port)
        return "out %s, %s" % (port, draw(st.sampled_from(["al",
                                                           "eax"])))
    if choice == 16:
        cc = draw(st.sampled_from(["e", "ne", "l", "ge", "b", "ae",
                                   "s", "ns", "o", "p"]))
        return "set%s %s" % (cc, draw(r8))
    if choice == 17:
        cc = draw(st.sampled_from(["e", "ne", "l", "g", "be", "a"]))
        return "cmov%s %s, %s" % (cc, r1, r2)
    if choice == 18:
        return "mov %s, %s" % (draw(seg_regs).replace("cs", "ds"), r1)
    if choice == 19:
        return "mov %s, %s" % (r1, draw(seg_regs))
    if choice == 20:
        op = draw(st.sampled_from(["mov", "add", "xchg"]))
        if op == "mov":
            return "mov %s, %s" % (draw(r8), draw(r8))
        if op == "add":
            return "add %s, %s" % (draw(r8), draw(r8))
        return "xchg %s, %s" % (r1, mem)
    return draw(st.sampled_from(
        ["mov cr0, %s" % r1, "mov %s, cr2" % r1, "mov dr7, %s" % r1,
         "mov %s, dr6" % r1]))


class TestDisasmRoundTripsAssemblerSurface:
    """Every encoding the assembler emits renders faithfully.

    "Round-trips" here means: decodes back to exactly one non-bad
    instruction covering every emitted byte, and the AT&T rendering is
    complete — no placeholder operands and no internal op names (which
    contain underscores) leaking into the listing.
    """

    @given(line=full_surface_lines())
    @settings(max_examples=600, deadline=None)
    def test_round_trip(self, line):
        code = assemble(line).code
        instrs = decode_all(code)
        assert len(instrs) == 1, line
        ins = instrs[0]
        assert ins.op != "(bad)", line
        assert ins.length == len(code), line
        text = format_instr(ins)
        assert text
        assert "?" not in text, (line, text)
        mnemonic = text.split()[0]
        assert "_" not in mnemonic, (line, text)
        # Operands survive the trip: each named register in the source
        # appears (AT&T-prefixed) in the rendering.  Exception:
        # "xchg eax, eax" assembles to 0x90, which *is* nop on x86 —
        # the architectural alias renders without operands.
        if text == "nop":
            return
        if ins.op not in ("mov_from_cr", "mov_to_cr", "mov_from_dr",
                          "mov_to_dr"):
            for token in line.replace(",", " ").split()[1:]:
                if token in REG_NAMES:
                    assert "%" + token in text, (line, text)
