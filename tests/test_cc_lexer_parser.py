"""Lexer and parser unit coverage for MinC."""

import pytest

from repro.cc import astnodes as ast
from repro.cc.lexer import LexError, tokenize
from repro.cc.parser import ParseError, parse


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("0 42 0x1F 0xff")
        assert [t.value for t in tokens[:-1]] == [0, 42, 31, 255]

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\0' '\\'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0, 92]

    def test_string_escapes(self):
        tokens = tokenize(r'"a\tb\n"')
        assert tokens[0].value == "a\tb\n"

    def test_keywords_vs_names(self):
        tokens = tokenize("int intx if iffy")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["kw", "name", "kw", "name"]

    def test_operators_longest_match(self):
        tokens = tokenize("a<<=b >>c <= >= == != && || ++ --")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops[0] == "<<="
        assert ">>" in ops and "<=" in ops and "++" in ops

    def test_comments_stripped(self):
        tokens = tokenize("a // line comment\n b /* block\nmulti */ c")
        names = [t.value for t in tokens if t.kind == "name"]
        assert names == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens if t.kind == "name"]
        assert lines == [1, 2, 4]

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("int x = `;")

    def test_bad_char_literal(self):
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestParser:
    def test_function_shape(self):
        program = parse("int add(a, b) { return a + b; }")
        func = program.decls[0]
        assert isinstance(func, ast.FuncDef)
        assert func.params == ["a", "b"]
        assert isinstance(func.body.stmts[0], ast.Return)

    def test_typed_params_accepted(self):
        program = parse("int f(int a, int *p) { return a; }")
        assert program.decls[0].params == ["a", "p"]

    def test_precedence(self):
        program = parse("int f() { return 1 + 2 * 3; }")
        expr = program.decls[0].body.stmts[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_assignment_right_associative(self):
        program = parse("int f(a, b) { a = b = 1; return a; }")
        stmt = program.decls[0].body.stmts[0].expr
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value, ast.Assign)

    def test_ternary(self):
        program = parse("int f(a) { return a ? 1 : 2; }")
        expr = program.decls[0].body.stmts[0].expr
        assert isinstance(expr, ast.Cond)

    def test_dangling_else_binds_inner(self):
        program = parse("""
        int f(a, b) {
            if (a)
                if (b) return 1;
                else return 2;
            return 3;
        }
        """)
        outer = program.decls[0].body.stmts[0]
        assert outer.els is None
        assert outer.then.els is not None

    def test_for_with_empty_clauses(self):
        program = parse("int f() { for (;;) break; return 0; }")
        loop = program.decls[0].body.stmts[0]
        assert loop.init is None and loop.cond is None and loop.post is None

    def test_global_array_inferred_size(self):
        program = parse("int a[] = {1, 2, 3};")
        decl = program.decls[0]
        assert decl.array_size == -1
        assert len(decl.init) == 3

    def test_asm_statement(self):
        program = parse('int f() { asm("nop"); return 0; }')
        stmt = program.decls[0].body.stmts[0]
        assert isinstance(stmt, ast.AsmStmt)
        assert stmt.text == "nop"

    def test_postfix_chain(self):
        program = parse("int f(p) { return p[1](2)[3]; }")
        expr = program.decls[0].body.stmts[0].expr
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Call)

    @pytest.mark.parametrize("source", [
        "int f() { if }",
        "int f() { return 1 }",
        "int f( { }",
        "int f() { while (1 }",
        "int 3x;",
        "int f() { x = ; }",
    ])
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("int f() { int x;")
