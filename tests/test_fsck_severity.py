"""fsck severity-ladder edge cases (§7.1 grading oracle).

Three rungs the campaign statistics lean on, probed directly:
indirect-block corruption (structural, repair-class), superblock
damage (reformat-class), and a dirty-but-repairable image (normal
reboot-and-fsck class).
"""

import struct

import pytest

from repro.machine.disk import (
    BLOCK_SIZE,
    DATA_START,
    DINODE_BYTES,
    DISK_BLOCKS,
    IND_SLOT,
    ITABLE_BLOCK,
    LIBC_CONTENT,
    N_INODES,
    fsck,
    mkfs,
    read_file,
)

FAT_PAYLOAD = bytes(range(256)) * 4 * 30        # 30 KiB: 30 blocks

FILES = {
    "/bin/init": b"\x01" * 500,
    "/bin/fat": FAT_PAYLOAD,                    # forces the indirect path
    "/etc/workload": b"/bin/fat",
    "/lib/libc.txt": LIBC_CONTENT,
}


def _inode_base(image, predicate):
    """Byte offset of the first inode whose decoded fields match."""
    for ino in range(1, N_INODES):
        base = ITABLE_BLOCK * BLOCK_SIZE + ino * DINODE_BYTES
        fields = struct.unpack_from("<4I12I", image, base)
        if fields[0] and predicate(fields):
            return base
    raise AssertionError("no matching inode")


def _indirect_inode_base(image):
    return _inode_base(image, lambda f: f[4 + IND_SLOT] != 0)


@pytest.fixture()
def image():
    return mkfs(FILES)


class TestIndirectBlockCorruption:
    def test_image_really_uses_an_indirect_block(self, image):
        assert read_file(image, "/bin/fat") == FAT_PAYLOAD
        _indirect_inode_base(image)             # raises if none

    def test_indirect_pointer_out_of_range_is_inconsistent(self, image):
        damaged = bytearray(image)
        base = _indirect_inode_base(damaged)
        struct.pack_into("<I", damaged, base + (4 + IND_SLOT) * 4,
                         DISK_BLOCKS + 7)
        report = fsck(bytes(damaged))
        assert report.status == "inconsistent"
        assert any("indirect" in issue for issue in report.issues)

    def test_indirect_entry_out_of_range_is_inconsistent(self, image):
        """A wild pointer *inside* the indirect block, not the slot."""
        damaged = bytearray(image)
        base = _indirect_inode_base(damaged)
        indirect = struct.unpack_from(
            "<I", damaged, base + (4 + IND_SLOT) * 4)[0]
        struct.pack_into("<I", damaged, indirect * BLOCK_SIZE, 0xFFFF)
        report = fsck(bytes(damaged))
        assert report.status == "inconsistent"
        assert any("out of range" in issue for issue in report.issues)

    def test_indirect_entry_duplicating_a_block_is_inconsistent(
            self, image):
        damaged = bytearray(image)
        base = _indirect_inode_base(damaged)
        indirect = struct.unpack_from(
            "<I", damaged, base + (4 + IND_SLOT) * 4)[0]
        first_direct = struct.unpack_from("<I", damaged, base + 4 * 4)[0]
        struct.pack_into("<I", damaged, indirect * BLOCK_SIZE,
                         first_direct)
        report = fsck(bytes(damaged))
        assert report.status == "inconsistent"
        assert any("multiply used" in issue for issue in report.issues)

    def test_indirect_damage_grades_severe(self, image):
        from repro.injection.severity import SEVERITY_DOWNTIME
        damaged = bytearray(image)
        base = _indirect_inode_base(damaged)
        struct.pack_into("<I", damaged, base + (4 + IND_SLOT) * 4,
                         DISK_BLOCKS + 7)
        # The ladder maps structural damage to the "severe" rung,
        # which must cost more downtime than a normal reboot.
        assert fsck(bytes(damaged)).status == "inconsistent"
        assert SEVERITY_DOWNTIME["severe"] > SEVERITY_DOWNTIME["normal"]


class TestSuperblockDamage:
    def test_geometry_damage_is_unrecoverable(self, image):
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 1 * 4, DISK_BLOCKS * 2)
        report = fsck(bytes(damaged))
        assert report.status == "unrecoverable"
        assert any("geometry" in issue for issue in report.issues)

    def test_root_inode_pointer_damage_is_unrecoverable(self, image):
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 7 * 4, 99)  # root_ino slot
        assert fsck(bytes(damaged)).status == "unrecoverable"

    def test_magic_high_bits_are_ignored(self, image):
        # Only the low 16 bits carry the ext2 magic; a flip in the
        # (unused) high half must not fail the whole filesystem.
        damaged = bytearray(image)
        magic = struct.unpack_from("<I", damaged, 0)[0]
        struct.pack_into("<I", damaged, 0, magic | 0x40000000)
        assert fsck(bytes(damaged)).status == "clean"

    def test_root_inode_type_corruption_is_unrecoverable(self, image):
        damaged = bytearray(image)
        base = ITABLE_BLOCK * BLOCK_SIZE + 1 * DINODE_BYTES
        struct.pack_into("<I", damaged, base, 1)    # root: dir -> file
        report = fsck(bytes(damaged))
        assert report.status == "unrecoverable"
        assert any("root inode" in issue for issue in report.issues)

    def test_unrecoverable_grades_most_severe(self, kernel, image):
        from repro.injection.severity import grade_severity
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 1 * 4, 0)
        severity, status = grade_severity(kernel, bytes(damaged))
        assert status == "unrecoverable"
        assert severity == "most_severe"


class TestDirtyButRepairable:
    def _dirty(self, image):
        damaged = bytearray(image)
        struct.pack_into("<I", damaged, 8 * 4, 0)   # state = mounted
        return damaged

    def test_dirty_flag_alone_is_dirty(self, image):
        assert fsck(bytes(self._dirty(image))).status == "dirty"

    def test_leaked_blocks_stay_dirty_not_inconsistent(self, image):
        # Blocks marked used but unreferenced are a leak, not
        # structural damage: auto-fsck reclaims them on reboot.
        damaged = self._dirty(image)
        bitmap = BLOCK_SIZE
        damaged[bitmap + ((DISK_BLOCKS - 1) >> 3)] |= 0x80
        report = fsck(bytes(damaged))
        assert report.status == "dirty"
        assert any("unreferenced" in issue for issue in report.issues)

    def test_repair_round_trips_to_clean(self, image):
        damaged = self._dirty(image)
        damaged[BLOCK_SIZE + (DATA_START >> 3)] = 0  # bitmap damage too
        report = fsck(bytes(damaged), repair=True)
        assert report.repaired is not None
        assert fsck(report.repaired).status == "clean"

    def test_repair_preserves_file_content(self, image):
        damaged = self._dirty(image)
        report = fsck(bytes(damaged), repair=True)
        assert read_file(report.repaired, "/bin/fat") == FAT_PAYLOAD
        assert read_file(report.repaired, "/bin/init") == b"\x01" * 500

    def test_dirty_grades_normal(self, kernel, image):
        from repro.injection.severity import grade_severity
        severity, status = grade_severity(kernel,
                                          bytes(self._dirty(image)))
        assert status == "dirty"
        assert severity == "normal"
