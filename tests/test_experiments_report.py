"""Full report assembly with a stubbed (instant) context."""

from repro.experiments import report as report_mod
from repro.injection.runner import CampaignResults
from tests.test_analysis_tables import sample_results


class StubCtx:
    scale = "stub"
    seed = 0

    def __init__(self, kernel, binaries, profile, harness):
        self._kernel = kernel
        self._binaries = binaries
        self._profile = profile
        self._harness = harness
        self._campaigns = {k: CampaignResults(k, sample_results())
                           for k in "ABC"}

    kernel = property(lambda self: self._kernel)
    binaries = property(lambda self: self._binaries)
    profile = property(lambda self: self._profile)
    harness = property(lambda self: self._harness)

    def campaign(self, key):
        return self._campaigns[key]

    def recovery_campaign(self, key):
        # the stub reuses the fail-stop sample results; a recovery
        # campaign with zero recovered runs is a valid digest.
        return self._campaigns[key]

    def traced_campaign(self, key):
        # likewise: the sample results carry no trace enrichment, so
        # the divergence exhibit must degrade to "-" rates.
        return self._campaigns[key]

    def fault_campaign(self, kind, variant=""):
        # every fault-model campaign reuses the sample results; the
        # study must digest them regardless of model kind or variant.
        return self._campaigns["A"]

    def all_results(self):
        out = []
        for key in "ABC":
            out.extend(self._campaigns[key].results)
        return out


def test_full_report_contains_every_exhibit(kernel, binaries, profile,
                                            harness, monkeypatch):
    ctx = StubCtx(kernel, binaries, profile, harness)
    # keep the register extension tiny for the stub run
    from repro.experiments import register_extension
    monkeypatch.setitem(register_extension._SPEC_CAP, "stub", 5)
    text = report_mod.build_report(ctx)
    for heading in ("Figure 1", "Table 1", "Table 2", "Table 3",
                    "Table 4", "Figure 4", "Table 5", "Figure 5",
                    "Figure 6", "Figure 7", "Figure 8", "Table 6",
                    "Table 7", "availability", "recovery-kernel study",
                    "sensitivity", "assertion placement",
                    "register-corruption",
                    "flight-recorder divergence validation",
                    "pluggable fault-model study",
                    "campaign-fabric equivalence"):
        assert heading in text, heading
    assert "Generated in" in text


def test_comparison_builds_from_stub(kernel, binaries, profile, harness):
    from repro.experiments.comparison import build_comparison
    ctx = StubCtx(kernel, binaries, profile, harness)
    text = build_comparison(ctx)
    assert "| Exhibit | Paper |" in text
    assert "Fig. 8 propagation rate" in text
