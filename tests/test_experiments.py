"""Experiment-harness tests: static exhibits plus a micro campaign."""

import pytest

from repro.experiments import ExperimentContext, SCALES
from repro.experiments import (
    availability_model,
    fig1_subsystem_sizes,
    table2_setup,
    table3_outcomes,
    table4_campaigns,
)


class TestStaticExhibits:
    def test_fig1_counts_every_subsystem(self):
        text = fig1_subsystem_sizes.run()
        for subsystem in ("arch", "fs", "kernel", "mm", "drivers", "ipc",
                          "lib", "net"):
            assert subsystem in text
        assert "total" in text

    def test_table2(self):
        text = table2_setup.run()
        assert "UnixBench" in text
        assert "LKCD" in text

    def test_table3_lists_all_outcomes(self):
        text = table3_outcomes.run()
        for outcome in ("not_activated", "not_manifested",
                        "fail_silence_violation", "crash_dumped",
                        "crash_unknown", "hang"):
            assert outcome in text

    def test_table4_lists_campaigns(self):
        text = table4_campaigns.run()
        assert "Any Random Error" in text
        assert "Valid but Incorrect Branch" in text

    def test_availability_model(self):
        text = availability_model.run()
        assert "most_severe" in text
        assert "years" in text


class TestContext:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale="galactic")

    def test_scales_are_increasing(self):
        tiny = SCALES["tiny"]["A"][0]
        full = SCALES["full"]["A"][0]
        assert tiny > full  # stride shrinks as scale grows

    def test_campaign_caching_roundtrip(self, tmp_path, monkeypatch,
                                        kernel, binaries, profile):
        ctx = ExperimentContext(scale="tiny",
                                results_dir=str(tmp_path))
        # Reuse session-built artifacts instead of rebuilding.
        ctx._kernel = kernel
        ctx._binaries = binaries
        ctx._profile = profile
        monkeypatch.setitem(SCALES, "tiny",
                            {"A": (400, 6), "B": (40, 6), "C": (30, 6)})
        first = ctx.campaign("C")
        assert len(first) <= 6
        # A fresh context must load the cached JSON, not re-run.
        ctx2 = ExperimentContext(scale="tiny",
                                 results_dir=str(tmp_path))
        loaded = ctx2.campaign("C")
        assert [r.outcome for r in loaded] == \
            [r.outcome for r in first]
